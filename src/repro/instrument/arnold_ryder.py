"""The Arnold-Ryder instrumentation-sampling transformations.

Arnold and Ryder's framework converts fully instrumented code into
profile *sampling* code.  The paper evaluates two of its layouts
(Figure 11) under two sampling mechanisms:

``no_duplication``
    every instrumentation site gets its own sampling check;
``full_duplication``
    the code region is replicated — a checking version without
    instrumentation and a duplicate with it — and a check at the
    method entry and every loop backedge picks the version, amortising
    the check across all sites in an acyclic region.

Each layout supports two check mechanisms:

``cbs`` (counter-based sampling)
    the Figure 1/4 global software counter: load, compare-to-zero
    branch, decrement, store; the sample path reloads the reset value;
``brr`` (branch-on-random)
    a single ``brr`` instruction; the instrumentation is placed out of
    line (at the end of the method) with the common case falling
    through, and the sampled path returns via ``brra``, exactly the
    Figure 8 code layout.

All four combinations produce a new :class:`~repro.instrument.cfg.Cfg`
ready to lower; ``include_payload=False`` keeps the sampling framework
but drops the profile-collection payload, which is how the evaluation
isolates framework overhead from instrumentation overhead (the solid
vs. dashed curves of Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from ..core.condition import field_for_interval
from .cfg import Block, Cfg, Terminator

#: Default memory address of the software counter's [count, reset] pair.
DEFAULT_COUNTER_ADDR = 0xF000


@dataclass(frozen=True)
class SamplingSpec:
    """Configuration of a sampling framework instance.

    ``kind`` is ``"cbs"`` or ``"brr"``.  ``interval`` must be a power
    of two (2..65536) so both frameworks can express exactly the same
    sampling rate.  The software counter lives at ``counter_addr``
    (count at +0, reset value at +4), addressed through ``base_reg``
    with ``scratch_reg`` as the counter scratch — the framework's
    register-pressure cost (Section 2, overhead source 3/4).
    """

    kind: str
    interval: int = 1024
    counter_addr: int = DEFAULT_COUNTER_ADDR
    base_reg: str = "r13"
    scratch_reg: str = "r12"
    #: Keep the cbs counter resident in ``scratch_reg`` instead of
    #: memory — Section 2's alternative placement: no loads/stores per
    #: check, but the register is permanently unavailable to the
    #: program ("a large cost in an ISA with few registers").
    counter_in_register: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("cbs", "brr"):
            raise ValueError(f"unknown sampling kind {self.kind!r}")
        if self.counter_in_register and self.kind != "cbs":
            raise ValueError("counter_in_register applies to cbs only")
        field_for_interval(self.interval)  # validates power of two

    @property
    def freq(self) -> str:
        """Assembler frequency operand for brr at this interval."""
        return f"1/{self.interval}"

    def init_lines(self) -> List[str]:
        """Program-startup code establishing the framework's state.

        For cbs: point ``base_reg`` at the counter pair and initialise
        count (= interval - 1, so the first sample falls exactly one
        interval in, matching the event-level samplers) and reset
        (= interval).  brr needs no architectural state at all — the
        asymmetry the paper is about.
        """
        if self.kind == "brr":
            return []
        if self.counter_in_register:
            return [
                f"li {self.scratch_reg}, {self.interval - 1}",
            ]
        return [
            f"li {self.base_reg}, {self.counter_addr:#x}",
            f"li {self.scratch_reg}, {self.interval}",
            f"sw {self.scratch_reg}, 4({self.base_reg})",
            f"addi {self.scratch_reg}, {self.scratch_reg}, -1",
            f"sw {self.scratch_reg}, 0({self.base_reg})",
        ]


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def strip_instrumentation(cfg: Cfg) -> Cfg:
    """The uninstrumented baseline: drop every site."""
    out = cfg.map_blocks(lambda name: name)
    for block in out.blocks():
        block.site_id = None
        block.site_lines = []
    return out


def full_instrumentation(cfg: Cfg) -> Cfg:
    """Unsampled instrumentation: every site's payload runs inline."""
    return cfg.map_blocks(lambda name: name)


# ----------------------------------------------------------------------
# No-Duplication
# ----------------------------------------------------------------------


def no_duplication(cfg: Cfg, spec: SamplingSpec,
                   include_payload: bool = True) -> Cfg:
    """A sampling check in front of every instrumentation site.

    The sampled (uncommon) path is placed out of line after the method
    body so the common case falls through (Figure 8's layout change,
    applied to both mechanisms for comparability with Figure 4).
    """
    out = Cfg(cfg.name, cfg.entry)
    out_of_line: List[Block] = []
    sr, br = spec.scratch_reg, spec.base_reg
    for block in cfg.blocks():
        if block.site_id is None:
            out.add(block.clone())
            continue
        payload = list(block.site_lines) if include_payload else []
        res_name = f"{block.name}__res"
        smp_name = f"{block.name}__smp"
        if spec.kind == "cbs" and spec.counter_in_register:
            # Register-resident counter: check and decrement without
            # touching memory; the sample path reloads the interval.
            check = Block(
                block.name,
                body=[],
                term=Terminator("cond", op="beq", ra=sr, rb="r0",
                                taken=smp_name, target=res_name),
            )
            resume = Block(
                res_name,
                body=[f"addi {sr}, {sr}, -1"] + list(block.body),
                term=replace(block.term),
            )
            sample = Block(
                smp_name,
                body=payload + [f"li {sr}, {spec.interval}"],
                term=Terminator("jump", target=res_name),
                cold=True,
            )
        elif spec.kind == "cbs":
            check = Block(
                block.name,
                body=[f"lw {sr}, 0({br})"],
                term=Terminator("cond", op="beq", ra=sr, rb="r0",
                                taken=smp_name, target=res_name),
            )
            resume = Block(
                res_name,
                body=[f"addi {sr}, {sr}, -1", f"sw {sr}, 0({br})"]
                + list(block.body),
                term=replace(block.term),
            )
            sample = Block(
                smp_name,
                body=payload + [f"lw {sr}, 4({br})"],
                term=Terminator("jump", target=res_name),
                cold=True,
            )
        else:
            check = Block(
                block.name,
                body=[],
                term=Terminator("brr", freq=spec.freq,
                                taken=smp_name, target=res_name),
            )
            resume = Block(res_name, body=list(block.body),
                           term=replace(block.term))
            sample = Block(smp_name, body=payload,
                           term=Terminator("brra", target=res_name),
                           cold=True)
        out.add(check)
        out.add(resume)
        out_of_line.append(sample)
    for block in out_of_line:
        out.add(block)
    out.validate()
    return out


# ----------------------------------------------------------------------
# Full-Duplication
# ----------------------------------------------------------------------


def full_duplication(cfg: Cfg, spec: SamplingSpec,
                     include_payload: bool = True) -> Cfg:
    """Figure 11's Full-Duplication layout.

    The checking version carries no instrumentation; the duplicate
    carries it all, with its backedges pointing back at the checking
    version's headers so each sample instruments one acyclic pass.
    Checks sit at the method entry and in front of every loop header.
    """
    backedges = cfg.backedges()
    headers = {dst for __, dst in backedges}
    check_targets = set(headers)
    check_targets.add(cfg.entry)

    def chk(name: str) -> str:
        return f"{name}__chk"

    def dup(name: str) -> str:
        return f"{name}__dup"

    sr, br = spec.scratch_reg, spec.base_reg
    out = Cfg(cfg.name, chk(cfg.entry))
    trailing: List[Block] = []
    into_checks = {name: chk(name) for name in check_targets}

    def add_check(name: str) -> None:
        """Emit the check block(s) deciding orig vs. duplicate."""
        if spec.kind == "brr":
            out.add(Block(
                chk(name),
                body=[],
                term=Terminator("brr", freq=spec.freq,
                                taken=dup(name), target=name),
            ))
            return
        res_name = chk(name) + "r"
        smp_name = chk(name) + "s"
        if spec.counter_in_register:
            out.add(Block(
                chk(name),
                body=[],
                term=Terminator("cond", op="beq", ra=sr, rb="r0",
                                taken=smp_name, target=res_name),
            ))
            out.add(Block(
                res_name,
                body=[f"addi {sr}, {sr}, -1"],
                term=Terminator("fall", target=name),
            ))
            trailing.append(Block(
                smp_name,
                body=[f"li {sr}, {spec.interval - 1}"],
                term=Terminator("jump", target=dup(name)),
                cold=True,
            ))
            return
        out.add(Block(
            chk(name),
            body=[f"lw {sr}, 0({br})"],
            term=Terminator("cond", op="beq", ra=sr, rb="r0",
                            taken=smp_name, target=res_name),
        ))
        out.add(Block(
            res_name,
            body=[f"addi {sr}, {sr}, -1", f"sw {sr}, 0({br})"],
            term=Terminator("fall", target=name),
        ))
        trailing.append(Block(
            smp_name,
            body=[f"lw {sr}, 4({br})", f"addi {sr}, {sr}, -1",
                  f"sw {sr}, 0({br})"],
            term=Terminator("jump", target=dup(name)),
            cold=True,
        ))

    # Checking version: instrumentation removed, header edges detour
    # through the checks.
    for block in cfg.blocks():
        if block.name in check_targets:
            add_check(block.name)
        clone = block.clone()
        clone.site_id = None
        clone.site_lines = []
        clone.term = block.term.retargeted(into_checks)
        out.add(clone)

    # Duplicate version: instrumentation inline, backedges exit to the
    # corresponding check so at most one acyclic pass is instrumented.
    for block in cfg.blocks():
        dclone = block.clone(dup(block.name))
        dclone.cold = True
        if not include_payload:
            dclone.site_lines = []
        mapping = {}
        for succ in block.term.successors():
            if (block.name, succ) in backedges:
                mapping[succ] = chk(succ)
            else:
                mapping[succ] = dup(succ)
        dclone.term = block.term.retargeted(mapping)
        out.add(dclone)

    for block in trailing:
        out.add(block)
    out.validate()
    return out


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------

VARIANTS = ("none", "full", "no-dup", "full-dup")


def apply_framework(
    cfg: Cfg,
    duplication: str,
    spec: Optional[SamplingSpec] = None,
    include_payload: bool = True,
) -> Cfg:
    """Produce one evaluation variant of an instrumented CFG.

    ``duplication``: ``"none"`` (uninstrumented baseline), ``"full"``
    (unsampled full instrumentation), ``"no-dup"`` or ``"full-dup"``
    (sampled; requires ``spec``).
    """
    if duplication == "none":
        return strip_instrumentation(cfg)
    if duplication == "full":
        return full_instrumentation(cfg)
    if spec is None:
        raise ValueError(f"{duplication!r} requires a SamplingSpec")
    if duplication == "no-dup":
        return no_duplication(cfg, spec, include_payload)
    if duplication == "full-dup":
        return full_duplication(cfg, spec, include_payload)
    raise ValueError(f"unknown duplication mode {duplication!r}; "
                     f"expected one of {VARIANTS}")
