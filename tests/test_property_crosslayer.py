"""Cross-layer property tests.

Hypothesis generates random (well-formed) programs and checks that
independent layers of the system agree: assembler vs. disassembler,
the functional machine vs. a direct Python evaluation of the same
operations, and event-level samplers vs. the ISA-level framework.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.brr import HardwareCounterUnit
from repro.isa.asm import assemble
from repro.isa.disasm import disassemble
from repro.isa.instructions import Op
from repro.sim.machine import Machine

# ----------------------------------------------------------------------
# Random straight-line ALU programs vs. a Python reference evaluator
# ----------------------------------------------------------------------

_ALU_OPS = ("add", "sub", "and", "or", "xor", "mul")
_IMM_OPS = ("addi", "andi", "ori", "xori")

_alu_instr = st.tuples(
    st.sampled_from(_ALU_OPS),
    st.integers(1, 9),  # rd
    st.integers(1, 9),  # ra
    st.integers(1, 9),  # rb
)
_imm_instr = st.tuples(
    st.sampled_from(_IMM_OPS),
    st.integers(1, 9),
    st.integers(1, 9),
    st.integers(-1000, 1000),
)

MASK = 0xFFFFFFFF


def _reference(instrs, init):
    regs = dict(init)
    for instr in instrs:
        if len(instr) == 4 and instr[0] in _ALU_OPS:
            op, rd, ra, rb = instr
            a, b = regs[ra], regs[rb]
            regs[rd] = {
                "add": (a + b) & MASK,
                "sub": (a - b) & MASK,
                "and": a & b,
                "or": a | b,
                "xor": a ^ b,
                "mul": (a * b) & MASK,
            }[op]
        else:
            op, rd, ra, imm = instr
            a = regs[ra]
            value = imm & MASK
            regs[rd] = {
                "addi": (a + imm) & MASK,
                "andi": a & value,
                "ori": a | value,
                "xori": a ^ value,
            }[op]
    return regs


@settings(max_examples=60, deadline=None)
@given(
    instrs=st.lists(st.one_of(_alu_instr, _imm_instr), min_size=1,
                    max_size=25),
    seeds=st.lists(st.integers(0, 0xFFFF), min_size=9, max_size=9),
)
def test_machine_matches_reference_semantics(instrs, seeds):
    init = {reg: seeds[reg - 1] for reg in range(1, 10)}
    lines = [f"li r{reg}, {value}" for reg, value in init.items()]
    for instr in instrs:
        if instr[0] in _ALU_OPS:
            op, rd, ra, rb = instr
            lines.append(f"{op} r{rd}, r{ra}, r{rb}")
        else:
            op, rd, ra, imm = instr
            lines.append(f"{op} r{rd}, r{ra}, {imm}")
    lines.append("halt")
    machine = Machine(assemble("\n".join(lines)))
    machine.run(max_steps=10_000)
    expected = _reference(instrs, init)
    for reg in range(1, 10):
        assert machine.regs[reg] == expected[reg], f"r{reg}"


# ----------------------------------------------------------------------
# Assembler <-> disassembler agreement on generated programs
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    body=st.lists(
        st.sampled_from([
            "addi r1, r1, 1",
            "sub r2, r1, r3",
            "lw r4, 8(r5)",
            "sb r4, -3(r5)",
            "nop",
            "marker 3",
            "mul r6, r6, r1",
            "slti r7, r1, 50",
        ]),
        min_size=1, max_size=20,
    ),
)
def test_disassembly_reassembles_bit_identically(body):
    source = "\n".join(["start:"] + body + ["beq r1, r2, start", "halt"])
    program = assemble(source)
    listing = disassemble(program)
    lines = []
    for line in listing.splitlines():
        if line.endswith(":"):
            lines.append(line)
        else:
            lines.append(line.split(":", 1)[1])
    reassembled = assemble("\n".join(lines))
    assert reassembled.words == program.words


# ----------------------------------------------------------------------
# Event-level samplers vs. the ISA-level framework
# ----------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    interval_log=st.integers(1, 5),
    iterations=st.integers(10, 120),
)
def test_isa_brr_framework_matches_event_sampler(interval_log, iterations):
    """Running a brr-sampled loop on the machine with a deterministic
    unit collects exactly the samples the event-level model predicts."""
    from repro.sampling import HardwareCounterSampler

    interval = 1 << interval_log
    source = f"""
        li r1, {iterations}
        li r2, 0
    loop:
        brr 1/{interval}, hit
    back:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    hit:
        addi r2, r2, 1
        brra back
    """
    machine = Machine(assemble(source), brr_unit=HardwareCounterUnit())
    machine.run(max_steps=200_000)

    sampler = HardwareCounterSampler(interval)
    expected = sum(sampler.should_sample() for __ in range(iterations))
    assert machine.regs[2] == expected


@settings(max_examples=15, deadline=None)
@given(iterations=st.integers(16, 200))
def test_trap_and_native_always_agree(iterations):
    """Property form of the Section 4.1 equivalence: trap emulation and
    native execution make identical decisions for any loop length."""
    from repro.core.brr import BranchOnRandomUnit
    from repro.core.lfsr import Lfsr
    from repro.sim.trap import BrrTrapEmulator

    source = f"""
        li r1, {iterations}
        li r2, 0
    loop:
        brr 1/4, hit
    back:
        addi r1, r1, -1
        bne r1, r0, loop
        halt
    hit:
        addi r2, r2, 1
        jmp back
    """
    seed = iterations * 2654435761 % 0xFFFFF or 1
    native = Machine(assemble(source),
                     brr_unit=BranchOnRandomUnit(Lfsr(20, seed=seed)))
    native.run(max_steps=400_000)

    trap_machine = Machine(assemble(source, brr_mode="trap"))
    BrrTrapEmulator(
        unit=BranchOnRandomUnit(Lfsr(20, seed=seed))).install(trap_machine)
    trap_machine.run(max_steps=400_000)

    assert native.regs[2] == trap_machine.regs[2]
