"""Content-addressed store of recorded execution traces — a typed view
over the three-tier store layer (:mod:`repro.store`).

The result cache (:mod:`repro.engine.cache`) memoises whole window
*payloads* under the full spec digest — program, seeds, markers **and**
:class:`~repro.timing.config.TimingConfig`.  The trace store sits one
level below it and is keyed by the **functional projection** of a
spec: the same digest with every timing-only parameter removed.  All
timing-config variations of one window therefore share a single
recorded functional trace — a sensitivity sweep over N configurations
pays one functional execution plus N cheap replays instead of N
lock-stepped executions (the record-once / replay-many architecture of
``docs/trace_format.md``).

The disk layout mirrors the result cache, byte-for-byte what the
pre-refactor store wrote: entries live under
``<root>/v<TRACE_STORE_VERSION>/<key[:2]>/<key>.trace``, written
atomically (temp file + ``os.replace``) so concurrent pool workers can
share one store.  The memory tier holds open
:class:`~repro.sim.trace_io.RecordedTrace` handles — a config sweep
replays the same key once per configuration, and sharing the handle
amortises the one-time columnar decode across all of them.  The handle
LRU is bounded by ``REPRO_TRACE_HANDLES`` (default
:data:`DEFAULT_TRACE_HANDLES`) /
:attr:`~repro.engine.config.EngineConfig.trace_handles`.  An optional
shared backend (``REPRO_STORE_BACKEND``) sits underneath: a local miss
fetches the recorded trace from the shared corpus instead of paying a
functional re-execution.

Every trace carries per-section CRC32s (``docs/integrity.md``); what a
failed verification becomes is the store's ``policy`` — ``verify``
(quarantine + raise), ``repair`` (the default: quarantine to
``<root>/quarantine/`` with a reason file and transparently re-record)
or ``trust`` (skip checksums; structurally broken entries are still
dropped).  The root defaults to ``<result cache root>/traces``
(override with ``REPRO_TRACE_DIR``); ``REPRO_TRACE=0`` disables the
store, falling every window back to the lock-step reference path.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, Optional, Tuple, Union

from ..sim.trace_io import RecordedTrace, TraceFormatError
from ..store import (
    Backend,
    Codec,
    DiskTier,
    IntegrityError,  # noqa: F401 - historical import surface
    MemoryTier,
    TieredStore,
    integrity_policy_from_env,
)
from ..store.base import env_int
from .cache import AUTO_BACKEND, default_cache_dir, resolve_backend

#: Folded into every trace key and the on-disk layout.  Bump whenever
#: the functional semantics of window execution or the trace encoding
#: change, so stale recorded streams invalidate wholesale.  v2: the
#: BRTR v2 encoding added per-section checksums.
TRACE_STORE_VERSION = 2

#: Spec parameters that cannot change the functional instruction
#: stream — only how it is timed — and are therefore excluded from the
#: functional projection.
TIMING_ONLY_PARAMS = frozenset({"config"})

#: Default bound of the open-handle LRU (the store's memory tier).
#: Traces hold their encoded bytes plus decoded columns in memory, so
#: the default stays small; raise it via ``REPRO_TRACE_HANDLES`` or
#: :attr:`~repro.engine.config.EngineConfig.trace_handles` when a
#: sweep cycles through more distinct windows than this.
DEFAULT_TRACE_HANDLES = 4


def trace_enabled_by_env() -> bool:
    return os.environ.get("REPRO_TRACE", "1") not in ("0", "false", "no")


def trace_handles_from_env() -> int:
    """``REPRO_TRACE_HANDLES`` (default :data:`DEFAULT_TRACE_HANDLES`)."""
    return max(1, env_int("REPRO_TRACE_HANDLES", DEFAULT_TRACE_HANDLES))


def default_trace_dir(cache_root: Optional[pathlib.Path] = None) -> pathlib.Path:
    """``REPRO_TRACE_DIR``, else ``traces/`` beside the result cache."""
    env = os.environ.get("REPRO_TRACE_DIR")
    if env:
        return pathlib.Path(env)
    root = cache_root if cache_root is not None else default_cache_dir()
    return pathlib.Path(root) / "traces"


def functional_key(kind: str, params: Dict[str, Any]) -> str:
    """Digest of a window's functional projection.

    ``params`` is the spec's plain-JSON parameter dict; every
    :data:`TIMING_ONLY_PARAMS` entry is dropped before hashing, which
    is exactly what lets windows that differ only in ``TimingConfig``
    share one recorded trace.
    """
    functional = {name: value for name, value in params.items()
                  if name not in TIMING_ONLY_PARAMS}
    blob = json.dumps(
        {"trace_schema": TRACE_STORE_VERSION, "kind": kind,
         "params": functional},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class _TraceCodec(Codec):
    """Trace entries: BRTR files, held in memory as open handles."""

    store_title = "trace store"
    namespace = "traces"

    def load(self, path: pathlib.Path,
             verify: bool) -> Tuple[RecordedTrace, int]:
        try:
            trace = RecordedTrace.open(path, verify=verify)
        except TraceFormatError as exc:
            # Normalise onto the tier layer's DECODE_ERRORS contract
            # without losing the specific error.
            raise ValueError(str(exc)) from exc
        return trace, trace.nbytes


class TraceStore:
    """Content-addressed store mapping functional keys to trace files."""

    #: Historical name of the default open-handle LRU bound.
    HANDLE_CACHE_SIZE = DEFAULT_TRACE_HANDLES

    def __init__(self, root: Optional[pathlib.Path] = None,
                 enabled: bool = True,
                 policy: Optional[str] = None,
                 handles: Optional[int] = None,
                 backend: Union[Backend, str, None] = AUTO_BACKEND,
                 pages: Optional[Dict[str, str]] = None,
                 breaker: Optional[bool] = None) -> None:
        self.root = pathlib.Path(root) if root else default_trace_dir()
        self.enabled = enabled
        #: ``{functional key: shared-memory segment name}`` published
        #: by the parent engine (:mod:`repro.engine.shm_pages`); a hit
        #: attaches the parent's decoded columns zero-copy instead of
        #: re-reading and re-decoding the trace file.
        self._pages: Dict[str, str] = dict(pages or {})
        self._attached: Dict[str, Any] = {}
        codec = _TraceCodec()
        self._tiers = TieredStore(
            disk=DiskTier(self.root, TRACE_STORE_VERSION, ".trace"),
            codec=codec,
            memory=MemoryTier(
                max_entries=(max(1, handles) if handles is not None
                             else trace_handles_from_env()),
                max_bytes=None),
            backend=resolve_backend(backend, codec.namespace, breaker),
            policy=(policy if policy is not None
                    else integrity_policy_from_env()),
            # record() keeps the fresh handle hot: the recording config
            # immediately replays it, then every sibling config does.
            promote_on_put=True,
            durable=False,
        )
        self.hits = 0
        self.misses = 0
        self.bytes_written = 0

    @property
    def policy(self) -> str:
        return self._tiers.policy

    @property
    def integrity(self):
        return self._tiers.integrity

    @property
    def backend(self) -> Optional[Backend]:
        return self._tiers.backend

    @property
    def handle_limit(self) -> Optional[int]:
        """Bound of the open-handle LRU (the memory tier)."""
        return self._tiers.memory.max_entries

    def _path(self, key: str) -> pathlib.Path:
        return self._tiers.disk.path(key)

    def invalidate(self, key: str) -> None:
        """Drop the open handle for ``key``, if any.  Must be called
        whenever the underlying file is removed, quarantined or
        replaced out-of-band, or the LRU would keep serving the stale
        decoded trace."""
        self._tiers.invalidate(key)
        attached = self._attached.pop(key, None)
        if attached is not None:
            attached.close()
        self._pages.pop(key, None)

    def load(self, key: str) -> Optional[RecordedTrace]:
        """The recorded trace for ``key``, or ``None`` on a miss.

        Reads walk the tier stack — handle LRU, local disk, shared
        backend.  A corrupt entry is quarantined under
        ``verify``/``repair`` (and raises :class:`IntegrityError`
        under ``verify``); under ``trust`` checksums are skipped and
        structurally broken entries are silently dropped, as before
        the integrity layer.
        """
        if not self.enabled:
            return None
        shared = self._attach_page(key)
        if shared is not None:
            self.hits += 1
            return shared
        found = self._tiers.get(key)
        if found is None:
            self.misses += 1
            return None
        self.hits += 1
        return found[0]

    def _attach_page(self, key: str):
        """Attach the published shared-memory page for ``key``, if
        any; failures degrade silently to the tier stack."""
        if key in self._attached:
            return self._attached[key]
        name = self._pages.get(key)
        if name is None:
            return None
        from .shm_pages import attach

        shared = attach(name)
        if shared is None:
            # Unlinked or unreadable: never retry this generation.
            self._pages.pop(key, None)
            return None
        self._attached[key] = shared
        return shared

    def record(self, key: str, recorder) -> RecordedTrace:
        """Record a trace into the store (atomic, last-writer-wins).

        ``recorder(path)`` must write a complete trace file at the
        given path — typically a closure over
        :func:`repro.timing.runner.record_window`.  With a shared
        backend configured the recorded file is also published there.
        With the store disabled, the recording happens in memory and
        nothing is persisted.
        """
        if not self.enabled:
            return recorder(None)
        trace = self._tiers.put_with(key, recorder,
                                     nbytes_of=lambda t: t.nbytes)
        self.bytes_written += trace.nbytes
        return trace

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).

    def stats(self) -> Dict[str, Any]:
        """Entry/byte counts of the current-version store, the
        integrity layer's health counters, and per-tier telemetry."""
        return self._tiers.stats()

    def tier_counters(self) -> Dict[str, Any]:
        """Per-tier hit/miss/byte counters only (cheap — no disk walk)."""
        return self._tiers.tier_counters()

    def flush(self) -> Dict[str, int]:
        """Retry backend publishes that failed (graceful drain)."""
        return self._tiers.flush()

    def scan(self, repair: bool = False) -> Dict[str, Any]:
        """Verify every stored trace (the ``repro doctor`` pass).

        With ``repair``, corrupt entries are quarantined so their next
        use re-records them; without it they are only reported.
        Quarantining drops the corresponding open handle, so the LRU
        cannot keep serving the removed file.
        """
        return self._tiers.scan(repair=repair)

    def prune(self) -> int:
        """Drop stale-version subtrees, leftover temp files and the
        quarantine audit trail; returns the number of files removed.
        Open handles are invalidated: pruned files must not be served
        from the LRU."""
        if not self.root.is_dir():
            self._tiers.memory.clear()
            return 0
        return self._tiers.prune(deep_strays=True)

    def clear(self) -> int:
        """Delete every stored trace (all versions); returns the count."""
        import shutil

        removed = sum(1 for p in self.root.rglob("*.trace")) \
            if self.root.is_dir() else 0
        shutil.rmtree(self.root, ignore_errors=True)
        self._tiers.memory.clear()
        return removed


# ----------------------------------------------------------------------
# The active store.  Window runners execute deep inside the engine —
# possibly in a pool worker process — so the store travels as module
# state rather than threading through every runner signature.  The
# engine installs its store around serial execution; pool workers
# install a reconstructed one from the shipped (root, enabled) pair.

_active_store: Optional[TraceStore] = None

#: Out-of-band per-window telemetry: the most recent timed window's
#: trace usage, consumed by the engine right after the runner returns.
#: Deliberately *not* part of the payload, so cached results stay
#: byte-identical regardless of trace hit/miss history.
_last_trace_info: Optional[Dict[str, Any]] = None


def get_active_store() -> Optional[TraceStore]:
    return _active_store


def set_active_store(store: Optional[TraceStore]) -> Optional[TraceStore]:
    """Install ``store`` as the active one; returns the previous."""
    global _active_store
    previous = _active_store
    _active_store = store
    return previous


@contextlib.contextmanager
def active_store(store: Optional[TraceStore]):
    previous = set_active_store(store)
    try:
        yield store
    finally:
        set_active_store(previous)


def set_last_trace_info(info: Optional[Dict[str, Any]]) -> None:
    global _last_trace_info
    _last_trace_info = info


def consume_trace_info() -> Optional[Dict[str, Any]]:
    """Take (and clear) the last timed window's trace telemetry."""
    global _last_trace_info
    info = _last_trace_info
    _last_trace_info = None
    return info
