"""Figure 2's overhead decomposition: fixed vs. variable cost.

"The total execution overhead from sampling is a combination of fixed
and variable costs.  The fixed cost comes from the instructions that
need to be unconditionally executed while variable costs can be
decreased by reducing the sampling rate."

Given a Figure 13 sweep, the framework-only curve at the lowest
sampling rate estimates the *fixed* cost; the gap between the
with-instrumentation and framework-only curves at each rate is the
*variable* (instrumentation) cost, which Figure 2 predicts is
proportional to the sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .stats import fit_through_origin


@dataclass
class DecompositionRow:
    """One sampling rate's overhead split."""

    interval: int
    rate: float
    total_overhead: float
    framework_overhead: float
    instrumentation_overhead: float


@dataclass
class Decomposition:
    """Fixed/variable decomposition of one framework combination."""

    kind: str
    duplication: str
    fixed_cost: float
    rows: List[DecompositionRow]
    variable_slope: float
    variable_r_squared: float


def decompose(sweep, kind: str, duplication: str) -> Decomposition:
    """Split a framework's overhead curves into Figure 2's components.

    ``sweep`` is a :class:`repro.experiments.fig13.MicrobenchSweep`
    containing both payload variants of the requested combination.
    """
    framework = sweep.series(kind, duplication, with_payload=False)
    with_inst = sweep.series(kind, duplication, with_payload=True)
    if not framework or not with_inst:
        raise ValueError(
            f"sweep lacks curves for {kind}/{duplication}"
        )
    by_interval = {p.interval: p for p in framework}
    rows = []
    for point in with_inst:
        base = by_interval.get(point.interval)
        if base is None:
            continue
        rows.append(DecompositionRow(
            interval=point.interval,
            rate=1.0 / point.interval,
            total_overhead=point.overhead,
            framework_overhead=base.overhead,
            instrumentation_overhead=point.overhead - base.overhead,
        ))
    if len(rows) < 2:
        raise ValueError("need at least two matching intervals")
    # Fixed cost: the framework floor as the rate approaches zero.
    fixed = min(r.framework_overhead for r in rows)
    slope, r_squared = fit_through_origin(
        [r.rate for r in rows],
        [r.instrumentation_overhead for r in rows],
    )
    return Decomposition(
        kind=kind,
        duplication=duplication,
        fixed_cost=fixed,
        rows=sorted(rows, key=lambda r: r.interval),
        variable_slope=slope,
        variable_r_squared=r_squared,
    )


def format_decomposition(decomposition: Decomposition) -> str:
    lines = [
        f"Figure 2 decomposition: {decomposition.kind} "
        f"({decomposition.duplication})",
        f"  fixed (framework) cost floor: "
        f"{decomposition.fixed_cost:.2f}% overhead",
        f"  variable cost ~ {decomposition.variable_slope:.1f}% x rate "
        f"(R^2 = {decomposition.variable_r_squared:.3f})",
        f"  {'interval':>8} {'rate':>9} {'total%':>8} {'framework%':>11} "
        f"{'instrumentation%':>17}",
    ]
    for row in decomposition.rows:
        lines.append(
            f"  {row.interval:>8} {row.rate:>9.5f} {row.total_overhead:>8.2f} "
            f"{row.framework_overhead:>11.2f} "
            f"{row.instrumentation_overhead:>17.2f}"
        )
    return "\n".join(lines)
