"""Mini-JVM workloads for the Figure 12 timing experiments.

Five of the paper's DaCapo benchmarks survived its Jikes/Simics
toolchain (bloat, fop, luindex, lusearch, jython).  Each is modelled
as a call tree over a generated *population* of methods sized like
baseline-compiled Java: a few driver methods iterating over dozens of
library methods of 60-250 busy-work instructions.  Two properties of
real JVM code matter for the figure and are reproduced here:

1. **Instruction working set** — the code footprint substantially
   exceeds the 32KB L1 I-cache and each outer iteration walks all of
   it, so a framework that inflates the code (counter-based sampling
   adds ~5 instructions per site; Section 2's overhead source 1) pays
   additional I-cache misses that a single ``brr`` does not.
2. **Site density** — instrumentation counts method executions, so
   sites are method entries; ``jython`` gets the interpreter-style
   tight dispatch loops over small opcode methods (high density, and
   the footnote-7 alternating leaf pattern behind its Figure 9/10
   counter resonance).

Every ``main`` runs a warm-up pass before ``marker 1`` and ends the
measured window at ``marker 2``.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from .model import Call, JvmProgram, Loop, Marker, MethodSpec, Work

#: Marker ids delimiting the measured window.
MEASURE_BEGIN = 1
MEASURE_END = 2


def _program(methods: List[MethodSpec]) -> JvmProgram:
    return JvmProgram({m.name: m for m in methods}, entry="main")


def _main(measured: Loop, warm: Loop) -> MethodSpec:
    return MethodSpec("main", [
        warm,
        Marker(MEASURE_BEGIN),
        measured,
        Marker(MEASURE_END),
    ])


def _generated(
    name: str,
    seed: int,
    n_lib: int,
    work_lo: int,
    work_hi: int,
    libs_per_driver: int,
    outer: int,
    inner_loop: int = 0,
) -> JvmProgram:
    """Build a benchmark from a seeded method population.

    ``n_lib`` library methods with Work in [lo, hi] are partitioned
    among drivers; each driver calls its slice (optionally inside an
    ``inner_loop``-iteration loop), and ``main`` calls every driver per
    outer iteration — touching the whole code footprint each pass.
    """
    rng = random.Random(seed)
    libs = [
        MethodSpec(f"{name}_m{i:02d}", [Work(rng.randint(work_lo, work_hi))])
        for i in range(n_lib)
    ]
    drivers: List[MethodSpec] = []
    for index in range(0, n_lib, libs_per_driver):
        slice_calls: List = [Call(m.name)
                             for m in libs[index:index + libs_per_driver]]
        body: List = [Work(rng.randint(24, 64))]
        if inner_loop:
            body.append(Loop(inner_loop, slice_calls))
        else:
            body.extend(slice_calls)
        drivers.append(MethodSpec(f"{name}_d{index // libs_per_driver}", body))
    main_body: List = [Call(d.name) for d in drivers]
    warm = Loop(max(1, outer // 4), main_body)
    return _program([_main(Loop(outer, main_body), warm)] + drivers + libs)


def build_fop(scale: float = 1.0) -> JvmProgram:
    """Formatter: medium population, straight-line drivers."""
    return _generated("fop", seed=11, n_lib=36, work_lo=90, work_hi=230,
                      libs_per_driver=6, outer=max(2, int(10 * scale)))


def build_bloat(scale: float = 1.0) -> JvmProgram:
    """Bytecode optimizer: large population of analysis visitors."""
    return _generated("bloat", seed=12, n_lib=48, work_lo=70, work_hi=210,
                      libs_per_driver=8, outer=max(2, int(9 * scale)))


def build_luindex(scale: float = 1.0) -> JvmProgram:
    """Indexer: biggest footprint, looping drivers (per-token work)."""
    return _generated("luindex", seed=13, n_lib=52, work_lo=80, work_hi=250,
                      libs_per_driver=13, outer=max(2, int(7 * scale)),
                      inner_loop=2)


def build_lusearch(scale: float = 1.0) -> JvmProgram:
    """Searcher: scoring loops over a moderate population."""
    return _generated("lusearch", seed=14, n_lib=40, work_lo=80, work_hi=220,
                      libs_per_driver=10, outer=max(2, int(9 * scale)),
                      inner_loop=2)


def build_jython(scale: float = 1.0) -> JvmProgram:
    """Interpreter: tight dispatch loops over small opcode methods —
    the highest site density — including an alternating two-leaf
    pattern (opA/opB), footnote 7's resonant loop body."""
    rng = random.Random(15)
    ops = [
        MethodSpec(f"jython_op{i:02d}", [Work(rng.randint(40, 90))])
        for i in range(30)
    ]
    frames: List[MethodSpec] = []
    for index in range(0, 30, 6):
        calls: List = [Call(op.name) for op in ops[index:index + 6]]
        frames.append(MethodSpec(
            f"jython_f{index // 6}",
            [Work(30), Loop(2, calls)],
        ))
    dispatch = MethodSpec("jython_dispatch", [
        Work(24),
        Loop(4, [Call("jython_opA"), Call("jython_opB")]),
    ])
    leaves = [
        MethodSpec("jython_opA", [Work(42)]),
        MethodSpec("jython_opB", [Work(46)]),
    ]
    outer = max(2, int(9 * scale))
    main_body: List = [Call(f.name) for f in frames] + [Call("jython_dispatch")]
    warm = Loop(max(1, outer // 4), main_body)
    return _program(
        [_main(Loop(outer, main_body), warm), dispatch]
        + frames + leaves + ops
    )


#: Benchmark builders in the Figure 12 presentation order.
FIGURE12_BENCHMARKS: Dict[str, Callable[[float], JvmProgram]] = {
    "bloat": build_bloat,
    "fop": build_fop,
    "luindex": build_luindex,
    "lusearch": build_lusearch,
    "jython": build_jython,
}
