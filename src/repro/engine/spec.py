"""Declarative simulation-window specifications.

A :class:`WindowSpec` is the engine's unit of work: a hashable,
JSON-serialisable description of one independent simulation window —
which workload/program to build, which sampling variant to apply,
which :class:`~repro.timing.config.TimingConfig` to time it under and
which seeds pin every source of randomness (workload RNG, LFSR
initialisation).  Because a window is a *pure function* of its spec,
the spec's canonical JSON digest doubles as the key of the on-disk
result cache and as the identity under which run artifacts are logged.

The digest folds in :data:`SCHEMA_VERSION`; bump it whenever the
meaning of any parameter, the payload layout, or the simulated
semantics change, so stale cache entries invalidate wholesale.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

#: Version tag folded into every cache key.  Bump on any change to
#: window semantics or payload layout.  v2: cache entries embed an
#: integrity block (payload digest + schema — see
#: ``docs/integrity.md``), so pre-integrity entries invalidate
#: wholesale instead of tripping digest verification.
SCHEMA_VERSION = 2


def _canonical(value: Any) -> Any:
    """Normalise a parameter value to a hashable canonical form."""
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _canonical(v)) for k, v in value.items()))
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"WindowSpec parameters must be JSON-able scalars/sequences/"
        f"mappings, got {type(value).__name__}: {value!r}"
    )


def _jsonable(value: Any) -> Any:
    """Expand the canonical form back into plain JSON types."""
    if isinstance(value, tuple):
        if value and all(
            isinstance(item, tuple) and len(item) == 2
            and isinstance(item[0], str) for item in value
        ):
            return {k: _jsonable(v) for k, v in value}
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class WindowSpec:
    """One independent, deterministic simulation window."""

    kind: str
    params: Tuple[Tuple[str, Any], ...]

    @classmethod
    def make(cls, kind: str, /, **params: Any) -> "WindowSpec":
        """Build a spec with canonically ordered parameters.

        ``kind`` is positional-only so that a *parameter* named "kind"
        (the cbs/brr framework selector) can coexist with it.
        """
        return cls(
            kind=kind,
            params=tuple(sorted(
                (name, _canonical(value)) for name, value in params.items()
            )),
        )

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def params_dict(self) -> Dict[str, Any]:
        """Parameters as plain JSON types (tuples become lists)."""
        return {name: _jsonable(value) for name, value in self.params}

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": self.params_dict()}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WindowSpec":
        return cls.make(data["kind"], **dict(data["params"]))

    @property
    def cache_key(self) -> str:
        """Content digest of (schema, kind, params) — the cache key."""
        blob = json.dumps(
            {"schema": SCHEMA_VERSION,
             "kind": self.kind,
             "params": self.params_dict()},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def short_key(self) -> str:
        """Abbreviated digest for log lines and error messages."""
        return self.cache_key[:12]

    def label(self) -> str:
        """Short human-readable identity for logs."""
        interesting = ("benchmark", "variant", "kind", "scheme", "schemes",
                       "interval", "seed", "n_chars", "scale")
        bits = [f"{k}={self.param(k)}" for k in interesting
                if self.param(k) is not None]
        return f"{self.kind}({', '.join(bits)})"
