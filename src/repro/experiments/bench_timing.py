"""The ``repro bench`` harness: kernel-tagged replay timing benchmark.

Runs every window the scorecard grades — the 15 Figure-12 cells (5
mini-JVM benchmarks x none/cbs/brr at full scale) and the 4 Figure-13
framework combinations — through every replay implementation:

* the per-record golden loop (``replay_window(..., fast="off")``) —
  the reference both for correctness and for speedups;
* the ``loop`` kernel (:mod:`repro.timing.fastpath`) — the per-record
  columnar fast path, the committed v1 baseline;
* the ``vector`` kernel (:mod:`repro.timing.fastpath_vec`) — the
  span-replay fixpoint kernel, measured both *cold* (first replay:
  event passes + fixpoint from zero) and *warm* (steady state: the
  memoised passes and warm-started fixpoint every later config of a
  sweep pays).

Each window is recorded once (in memory; the result cache and trace
store are bypassed), its columns decoded up front (``decode_s`` is
reported separately), each kernel's stats checked byte-identical to
the golden model, and each kernel timed.  Every per-kernel row is
tagged with the kernel that actually executed — the vector kernel
delegates windows outside its exactness envelope to the loop kernel,
and the tag records that.

The emitted document (``BENCH_timing.json`` under ``--out``) is the
machine-readable perf trajectory: per-window and per-kernel records/s
and speedup, per-figure aggregates (the kernel-v2 acceptance floor is
the Figure-12 warm-vector aggregate), and the batched-LFSR rates.
``repro bench`` exits non-zero if any window's stats diverge.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..engine.spec import WindowSpec
from ..engine.windows import MATERIALS


def scorecard_bench_specs() -> List[WindowSpec]:
    """The 19 scorecard windows (15 Figure-12 cells + 4 Figure-13
    combos), exactly as the golden equivalence tests pin them."""
    from ..jvm.benchmarks import FIGURE12_BENCHMARKS
    from .fig12 import jvm_window_spec
    from .fig13 import COMBOS, microbench_window_spec

    return [
        jvm_window_spec(name, variant, scale=1.0)
        for name in FIGURE12_BENCHMARKS
        for variant in ("none", "cbs", "brr")
    ] + [
        microbench_window_spec(600, duplication, seed=0, kind=kind,
                               interval=1024)
        for kind, duplication in COMBOS
    ]


#: Benchmarked kernel passes: knob value, plus whether the pass is a
#: repeat (steady-state) measurement of the same kernel.
_PASSES = (("loop", "loop", False),
           ("vector", "vector", False),
           ("vector_warm", "vector", True))


def _kernel_row(records: int, golden_s: float, seconds: float,
                kernel: str, identical: bool) -> Dict[str, Any]:
    return {
        "kernel": kernel,
        "seconds": round(seconds, 6),
        "records_per_s": round(records / seconds) if seconds > 0 else None,
        "speedup": round(golden_s / seconds, 3) if seconds > 0 else None,
        "identical": identical,
    }


def _bench_window(spec: WindowSpec) -> Dict[str, Any]:
    """Record one window, replay it on every kernel, compare and time."""
    from ..timing import fastpath_vec
    from ..timing.runner import record_window, replay_window

    params = spec.params_dict()
    materials = MATERIALS[spec.kind](params)
    config = params.get("config")
    if config is not None:
        from ..timing.config import TimingConfig

        config = TimingConfig.from_dict(config)
    trace = record_window(
        materials["program"], materials["end"],
        brr_unit=materials["brr_unit"], setup=materials["setup"],
    )

    def replay(fast):
        started = time.perf_counter()
        result = replay_window(
            trace, materials["begin"], materials["end"], config=config,
            fast_forward=materials["fast_forward"],
            program=materials["program"], fast=fast,
        )
        return result, time.perf_counter() - started

    # Decode up front so per-kernel timings measure the kernels, not
    # the shared one-time columnar decode.
    started = time.perf_counter()
    trace.columns()
    decode_s = time.perf_counter() - started

    golden, golden_s = replay("off")
    records = len(trace)
    kernels: Dict[str, Dict[str, Any]] = {}
    for name, mode, _repeat in _PASSES:
        result, seconds = replay(mode)
        executed = (fastpath_vec.last_kernel or "loop") \
            if mode == "vector" else "loop"
        kernels[name] = _kernel_row(
            records, golden_s, seconds, executed,
            result.stats == golden.stats
            and result.total_steps == golden.total_steps)
    vector = kernels["vector"]
    return {
        "label": spec.label(),
        "kind": spec.kind,
        "figure": "figure12" if spec.kind == "jvm" else "figure13",
        "records": records,
        "decode_s": round(decode_s, 6),
        "golden_s": round(golden_s, 6),
        "golden_records_per_s": round(records / golden_s) if golden_s > 0
        else None,
        "kernels": kernels,
        # Historical flat fields (= the cold vector pass).
        "fast_s": vector["seconds"],
        "speedup": vector["speedup"],
        "fast_records_per_s": vector["records_per_s"],
        "identical": all(k["identical"] for k in kernels.values()),
        "cycles": golden.stats.cycles,
        "instructions": golden.stats.instructions,
    }


def _aggregate(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    golden_s = sum(row["golden_s"] for row in rows)
    records = sum(row["records"] for row in rows)
    kernels: Dict[str, Dict[str, Any]] = {}
    for name, _mode, _repeat in _PASSES:
        seconds = sum(row["kernels"][name]["seconds"] for row in rows)
        executed = sorted({row["kernels"][name]["kernel"] for row in rows})
        kernels[name] = _kernel_row(
            records, golden_s, seconds, "+".join(executed),
            all(row["kernels"][name]["identical"] for row in rows))
    vector = kernels["vector"]
    warm_s = kernels["vector_warm"]["seconds"]
    return {
        "windows": len(rows),
        "records": records,
        "golden_s": round(golden_s, 6),
        "golden_records_per_s": round(records / golden_s) if golden_s > 0
        else None,
        "kernels": kernels,
        # The CI perf-smoke floor: steady-state vector over the loop
        # kernel (cold vector pays the one-time event passes and is
        # not the number sweeps experience).
        "vector_over_loop_warm": round(
            kernels["loop"]["seconds"] / warm_s, 3) if warm_s > 0 else None,
        "fast_s": vector["seconds"],
        "speedup": vector["speedup"],
        "fast_records_per_s": vector["records_per_s"],
        "identical": all(row["identical"] for row in rows),
    }


def bench_lfsr_rates(bits: int = 1 << 16) -> Dict[str, Any]:
    """Bit-at-a-time vs. word-batched LFSR generation (satellite of
    the same PR; ``benchmarks/bench_lfsr.py`` pins the speedup)."""
    from ..core.lfsr import Lfsr

    words = bits // 64
    bits = words * 64
    stepper = Lfsr(20, seed=0xACE1)
    started = time.perf_counter()
    for _ in range(bits):
        stepper.step()
    step_s = time.perf_counter() - started

    batched = Lfsr(20, seed=0xACE1)
    started = time.perf_counter()
    batched.step_words(words)
    words_s = time.perf_counter() - started
    assert batched.state == stepper.state, "batched LFSR diverged"

    return {
        "bits": bits,
        "step_s": round(step_s, 6),
        "step_words_s": round(words_s, 6),
        "step_bits_per_s": round(bits / step_s) if step_s > 0 else None,
        "step_words_bits_per_s": round(bits / words_s) if words_s > 0
        else None,
        "speedup": round(step_s / words_s, 3) if words_s > 0 else None,
    }


def bench_timing(specs: Optional[List[WindowSpec]] = None) -> Dict[str, Any]:
    """Run the full fastpath-vs-golden benchmark document."""
    rows = [_bench_window(spec)
            for spec in (specs if specs is not None
                         else scorecard_bench_specs())]
    figures = {}
    for figure in ("figure12", "figure13"):
        subset = [row for row in rows if row["figure"] == figure]
        if subset:
            figures[figure] = _aggregate(subset)
    return {
        "schema": 2,
        "windows": rows,
        "figures": figures,
        "aggregate": _aggregate(rows),
        "lfsr": bench_lfsr_rates(),
    }


def format_bench(data: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`bench_timing` document."""

    def rates(entry: Dict[str, Any]) -> str:
        cells = []
        for name in ("loop", "vector", "vector_warm"):
            kernel = entry["kernels"][name]
            tag = "*" if kernel["kernel"] not in (name.split("_")[0],) \
                else " "
            cells.append(f"{kernel['speedup']:>7.2f}x{tag}")
        return " ".join(cells)

    lines = [
        "repro bench: replay kernels vs golden (speedups; * = delegated)",
        f"{'window':<28} {'records':>9} {'golden_s':>9} "
        f"{'loop':>8}  {'vector':>8} {'vec-warm':>8}   warm rec/s  ok",
    ]
    for row in data["windows"]:
        warm = row["kernels"]["vector_warm"]
        lines.append(
            f"{row['label']:<28} {row['records']:>9} "
            f"{row['golden_s']:>9.3f} {rates(row)} "
            f"{warm['records_per_s']:>12,}  "
            f"{'yes' if row['identical'] else 'NO'}"
        )
    for name, agg in list(data["figures"].items()) + \
            [("aggregate", data["aggregate"])]:
        warm = agg["kernels"]["vector_warm"]
        lines.append(
            f"{name:<28} {agg['records']:>9} {agg['golden_s']:>9.3f} "
            f"{rates(agg)} {warm['records_per_s']:>12,}  "
            f"{'yes' if agg['identical'] else 'NO'}"
        )
    lfsr = data["lfsr"]
    lines.append(
        f"lfsr step_words ({lfsr['bits']} bits): "
        f"{lfsr['step_bits_per_s']:,} -> {lfsr['step_words_bits_per_s']:,} "
        f"bits/s ({lfsr['speedup']:.2f}x)"
    )
    status = "all windows byte-identical" \
        if data["aggregate"]["identical"] else "DIVERGENCE DETECTED"
    lines.append(status)
    return "\n".join(lines)
