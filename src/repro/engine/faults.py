"""Deterministic fault injection: the engine's crash-test dummy.

The fault-tolerance machinery in :mod:`repro.engine.core` (retry with
backoff, pool rebuild, skip placeholders) is only trustworthy if it is
exercised, so the engine ships an injection seam that tests and the CI
smoke job drive:

* ``REPRO_FAULT_RATE=p`` makes a fraction *p* of window attempts fail.
  The decision is a pure function of ``(window key, attempt)`` — a
  sha256 hash mapped to [0, 1) and compared against *p* — so a given
  run configuration always faults the *same* windows on the *same*
  attempts, in serial and pool mode alike.  A retried attempt hashes
  differently, which is what lets ``failure_policy="retry"`` converge
  to byte-identical figure tables.
* ``REPRO_FAULT_MODE`` picks the failure shape:

  - ``exc`` (default) — raise :class:`InjectedWorkerFault` inside the
    attempt (a clean in-worker exception);
  - ``kill`` — ``os._exit(13)`` the pool worker, producing the
    ``BrokenProcessPool`` path (only honoured inside pool workers;
    serial attempts degrade to ``exc``);
  - ``hang`` — sleep ``REPRO_FAULT_HANG_S`` seconds (default 3600)
    then raise, exercising the ``REPRO_TIMEOUT`` path.

Injection happens at the very start of an attempt, before any
simulation or trace recording, so a faulted attempt has no side
effects beyond a possibly leftover temp file.
"""

from __future__ import annotations

import hashlib
import os
import time

FAULT_MODES = ("exc", "kill", "hang")


class InjectedWorkerFault(RuntimeError):
    """A deliberately injected, transient window failure."""


def fault_rate_from_env() -> float:
    raw = os.environ.get("REPRO_FAULT_RATE")
    if not raw:
        return 0.0
    try:
        return min(max(float(raw), 0.0), 0.999999)
    except ValueError:
        return 0.0


def fault_mode_from_env() -> str:
    mode = os.environ.get("REPRO_FAULT_MODE", "exc")
    return mode if mode in FAULT_MODES else "exc"


def fault_hang_seconds() -> float:
    try:
        return float(os.environ.get("REPRO_FAULT_HANG_S", "3600"))
    except ValueError:
        return 3600.0


def should_inject(key: str, attempt: int, rate: float) -> bool:
    """Deterministic per-(window, attempt) fault decision."""
    if rate <= 0.0:
        return False
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    fraction = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return fraction < rate


def maybe_inject(key: str, attempt: int, rate: float,
                 mode: str = "exc", in_worker: bool = False) -> None:
    """Fault this attempt iff the deterministic decision says so."""
    if not should_inject(key, attempt, rate):
        return
    if mode == "kill" and in_worker:
        os._exit(13)
    if mode == "hang":
        time.sleep(fault_hang_seconds())
    raise InjectedWorkerFault(
        f"injected fault: window {key[:12]} attempt {attempt}")


# ----------------------------------------------------------------------
# On-disk corruption injection: the integrity layer's crash-test dummy.
# Used by tests/test_integrity.py and the CI corruption-smoke job to
# damage stores *deterministically* — the same seed always flips the
# same bit of the same file — so detection/quarantine/self-heal
# behaviour is reproducible.

CORRUPTION_KINDS = ("flip", "truncate")


def _corruption_offset(path, size: int, seed: int) -> int:
    """Deterministic byte offset within ``path`` for a given seed."""
    digest = hashlib.sha256(f"{os.path.basename(path)}:{seed}"
                            .encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % size


def corrupt_file(path, seed: int = 0, kind: str = "flip") -> int:
    """Deterministically damage one file in place.

    ``flip`` XORs a single bit of a seed-chosen byte; ``truncate``
    drops the tail from a seed-chosen offset (at least one byte).
    Returns the affected offset.  Raises ``ValueError`` on an empty
    file or unknown kind — corrupting nothing is a test bug worth
    failing loudly on.
    """
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"corruption kind must be one of {CORRUPTION_KINDS}, "
            f"got {kind!r}")
    size = os.path.getsize(path)
    if size <= 0:
        raise ValueError(f"cannot corrupt empty file: {path}")
    offset = _corruption_offset(path, size, seed)
    if kind == "truncate":
        offset = min(offset, size - 1)  # drop at least one byte
        with open(path, "r+b") as handle:
            handle.truncate(offset)
        return offset
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([byte ^ (1 << (seed % 8))]))
    return offset
