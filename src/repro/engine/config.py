"""Engine configuration: one dataclass, one place to read the environment.

:class:`EngineConfig` consolidates every scalar knob of the
:class:`~repro.engine.core.ExperimentEngine` — worker count, replay
fast-path, per-window timeout, retry budget and backoff, failure
policy, fault-injection rate, and the resume source.  It is frozen,
JSON round-trippable (``to_dict``/``from_dict``), and every
``REPRO_*`` environment variable the engine honours is resolved in
exactly one function, :meth:`EngineConfig.from_env`:

==========================  ===========================================
``REPRO_JOBS``              worker processes per window batch
``REPRO_FAST``              replay kernel: ``vector`` | ``loop`` | ``off``
``REPRO_TRACE_PAGES``       shared-memory trace pages for pool workers
``REPRO_TIMEOUT``           per-window timeout in seconds (pool only)
``REPRO_RETRIES``           retry budget per window (default 3)
``REPRO_BACKOFF``           base backoff seconds (default 0.05)
``REPRO_FAILURE_POLICY``    ``raise`` | ``retry`` | ``skip``
``REPRO_FAULT_RATE``        deterministic fault-injection probability
``REPRO_INTEGRITY``         store policy: ``verify`` | ``repair`` | ``trust``
``REPRO_VALIDATE``          golden cross-check every n-th fast replay
``REPRO_VALIDATE_POLICY``   divergence: ``warn`` | ``fallback`` | ``raise``
``REPRO_STORE_BACKEND``     shared store tier (``fs://<dir>``; empty = off)
``REPRO_BREAKER``           circuit breaker around the shared backend
                            (default on; ``REPRO_BREAKER_*`` tune it —
                            see ``docs/serve.md``)
``REPRO_TRACE_HANDLES``     open trace-handle LRU bound (default 4)
``REPRO_SEED``              uniform experiment seed (workloads + sampling)
==========================  ===========================================

Live collaborators (the result cache, trace store and run recorder)
stay constructor injection on the engine itself — they are objects,
not configuration.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from ..store.backend import backend_spec_from_env
from ..timing.fastpath import normalize_fast_mode
from .integrity import (
    INTEGRITY_POLICIES,
    VALIDATE_POLICIES,
    integrity_policy_from_env,
    validate_every_from_env,
    validate_policy_from_env,
)

#: Allowed values of :attr:`EngineConfig.failure_policy`.
FAILURE_POLICIES = ("raise", "retry", "skip")


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


@dataclass(frozen=True)
class EngineConfig:
    """Every scalar knob of the experiment engine, in one place."""

    #: Worker processes per window batch; ``None`` means the library
    #: default (1 = the deterministic serial backend).
    jobs: Optional[int] = None
    #: Replay kernel selection: ``"vector"`` (fixpoint span kernel),
    #: ``"loop"`` (per-record columnar kernel), ``"off"`` (golden
    #: model), or the historical booleans (``True`` = ``"vector"``).
    #: ``None`` resolves ``REPRO_FAST`` at engine construction.
    fast: Union[None, bool, str] = None
    #: Per-window wall-clock timeout in seconds for pool execution
    #: (``None`` = no timeout).  A window that exceeds it is treated as
    #: a transient failure: the worker is abandoned, the pool rebuilt,
    #: and the window retried/skipped per :attr:`failure_policy`.
    timeout: Optional[float] = None
    #: Transient-failure retry budget per window (crash, timeout,
    #: pickling error, injected fault).
    retries: int = 3
    #: Base backoff in seconds; attempt *n* waits ``backoff * 2**n``.
    backoff: float = 0.05
    #: What to do when a window keeps failing: ``raise`` (fail fast, no
    #: retries), ``retry`` (retry then raise), ``skip`` (retry then
    #: return a typed :class:`~repro.engine.core.WindowFailure`).
    failure_policy: str = "retry"
    #: Deterministic fault-injection probability in [0, 1) — see
    #: :mod:`repro.engine.faults`.  0 disables injection.
    fault_rate: float = 0.0
    #: Path to a prior run's JSONL log; completed windows recorded
    #: there are expected to be served from the durable result cache.
    resume_from: Optional[str] = None
    #: Store integrity policy (``verify`` | ``repair`` | ``trust``) —
    #: what a corrupt trace or cache entry becomes; see
    #: :mod:`repro.engine.integrity`.
    integrity: str = "repair"
    #: Cross-check every n-th fast-path replay against the golden
    #: lock-step model (``None``/0 disables the watchdog).
    validate_every: Optional[int] = None
    #: What a watchdog divergence becomes: ``warn`` (keep fast stats,
    #: log), ``fallback`` (return golden stats), ``raise`` (abort).
    validate_policy: str = "fallback"
    #: Shared store-backend spec (``fs://<dir>`` or a bare directory);
    #: ``None`` disables the shared tier — see :mod:`repro.store.backend`.
    store_backend: Optional[str] = None
    #: Wrap the shared backend in a
    #: :class:`~repro.store.backend.CircuitBreakerBackend` so a flaky
    #: or hung backend degrades the stores to local-tiers-only instead
    #: of stalling every request.  ``None`` resolves ``REPRO_BREAKER``
    #: (default on); the breaker's thresholds come from
    #: ``REPRO_BREAKER_*`` (see ``docs/serve.md``).
    breaker: Optional[bool] = None
    #: Bound of the trace store's open-handle LRU; ``None`` means the
    #: library default (:data:`repro.engine.tracestore.DEFAULT_TRACE_HANDLES`).
    trace_handles: Optional[int] = None
    #: Uniform experiment seed (``--seed`` / ``REPRO_SEED``): the
    #: default workload seed for seeded figures *and* the default
    #: :class:`~repro.stats.plan.SamplingPlan` selection seed.  ``None``
    #: keeps each experiment's historical per-figure default.
    seed: Optional[int] = None
    #: Publish decoded trace columns as ``multiprocessing``
    #: shared-memory pages for pool workers (zero-copy attach instead
    #: of a per-worker decode); ``None`` resolves ``REPRO_TRACE_PAGES``
    #: (default on) at engine construction.  Serial runs ignore it.
    trace_pages: Optional[bool] = None

    def __post_init__(self) -> None:
        normalize_fast_mode(self.fast)  # raises on a bad mode name
        if self.failure_policy not in FAILURE_POLICIES:
            raise ValueError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {self.failure_policy!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if not 0.0 <= self.fault_rate < 1.0:
            raise ValueError(
                f"fault_rate must be in [0, 1), got {self.fault_rate}")
        if self.integrity not in INTEGRITY_POLICIES:
            raise ValueError(
                f"integrity must be one of {INTEGRITY_POLICIES}, "
                f"got {self.integrity!r}")
        if self.validate_every is not None and self.validate_every < 0:
            raise ValueError(
                f"validate_every must be >= 0, got {self.validate_every}")
        if self.validate_policy not in VALIDATE_POLICIES:
            raise ValueError(
                f"validate_policy must be one of {VALIDATE_POLICIES}, "
                f"got {self.validate_policy!r}")
        if self.trace_handles is not None and self.trace_handles < 1:
            raise ValueError(
                f"trace_handles must be >= 1, got {self.trace_handles}")

    # ------------------------------------------------------------------

    @classmethod
    def from_env(cls, **overrides: Any) -> "EngineConfig":
        """Resolve every ``REPRO_*`` engine knob; ``overrides`` win."""
        values: Dict[str, Any] = {}
        jobs = _env_int("REPRO_JOBS")
        if jobs is not None:
            values["jobs"] = max(1, jobs)
        fast = os.environ.get("REPRO_FAST")
        if fast is not None:
            try:
                values["fast"] = normalize_fast_mode(fast)
            except ValueError:
                pass  # unknown mode strings keep the library default
        pages = os.environ.get("REPRO_TRACE_PAGES")
        if pages is not None:
            values["trace_pages"] = pages not in ("0", "false", "no")
        timeout = _env_float("REPRO_TIMEOUT")
        if timeout is not None and timeout > 0:
            values["timeout"] = timeout
        retries = _env_int("REPRO_RETRIES")
        if retries is not None:
            values["retries"] = max(0, retries)
        backoff = _env_float("REPRO_BACKOFF")
        if backoff is not None:
            values["backoff"] = max(0.0, backoff)
        policy = os.environ.get("REPRO_FAILURE_POLICY")
        if policy in FAILURE_POLICIES:
            values["failure_policy"] = policy
        rate = _env_float("REPRO_FAULT_RATE")
        if rate is not None:
            values["fault_rate"] = min(max(rate, 0.0), 0.999999)
        values["integrity"] = integrity_policy_from_env()
        validate = validate_every_from_env()
        if validate is not None:
            values["validate_every"] = validate
        values["validate_policy"] = validate_policy_from_env()
        values["store_backend"] = backend_spec_from_env()
        breaker = os.environ.get("REPRO_BREAKER")
        if breaker is not None:
            values["breaker"] = breaker.strip().lower() \
                not in ("0", "false", "no", "off")
        handles = _env_int("REPRO_TRACE_HANDLES")
        if handles is not None:
            values["trace_handles"] = max(1, handles)
        seed = _env_int("REPRO_SEED")
        if seed is not None:
            values["seed"] = seed
        values.update(overrides)
        return cls(**values)

    def with_overrides(self, **overrides: Any) -> "EngineConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**dict(data))
