"""Property tests: position streams are chunk-size invariant.

The accuracy harness streams workloads in chunks; correctness demands
that a sampler's decisions not depend on where the chunk boundaries
fall. Hypothesis drives both stream classes through arbitrary chunk
partitions and compares against the one-shot answer.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sampling.positions import (
    BrrPositionStream,
    CounterPositionStream,
    brr_positions,
    periodic_positions,
)


def collect_chunked(stream, chunks):
    """Global positions gathered across a chunk partition."""
    positions = []
    offset = 0
    for size in chunks:
        local = stream.take(size)
        positions.extend((local + offset).tolist())
        offset += size
    return positions


@settings(max_examples=50, deadline=None)
@given(
    interval=st.integers(1, 64),
    chunks=st.lists(st.integers(0, 300), min_size=1, max_size=12),
)
def test_counter_stream_chunk_invariant(interval, chunks):
    total = sum(chunks)
    expected = periodic_positions(total, interval).tolist()
    chunked = collect_chunked(CounterPositionStream(interval), chunks)
    assert chunked == expected


@settings(max_examples=30, deadline=None)
@given(
    field=st.integers(0, 5),
    seed=st.integers(1, 0xFFFF),
    chunks=st.lists(st.integers(0, 400), min_size=1, max_size=8),
)
def test_brr_stream_chunk_invariant(field, seed, chunks):
    total = sum(chunks)
    expected = brr_positions(total, field, width=16, seed=seed).tolist()
    stream = BrrPositionStream(field, width=16, seed=seed)
    assert collect_chunked(stream, chunks) == expected


@settings(max_examples=30, deadline=None)
@given(
    interval=st.integers(1, 32),
    n=st.integers(0, 500),
)
def test_counter_positions_count(interval, n):
    """Exactly floor((n - first - 1)/interval) + 1 samples (or 0)."""
    positions = periodic_positions(n, interval)
    first = interval - 1
    expected = 0 if n <= first else (n - first - 1) // interval + 1
    assert positions.size == expected
    if positions.size:
        assert positions[0] == first
        assert np.all(np.diff(positions) == interval)


@settings(max_examples=25, deadline=None)
@given(
    field=st.integers(0, 4),
    seed=st.integers(1, 0xFFFF),
)
def test_brr_positions_within_bounds(field, seed):
    n = 2000
    positions = brr_positions(n, field, width=16, seed=seed)
    if positions.size:
        assert positions.min() >= 0
        assert positions.max() < n
        assert np.all(np.diff(positions) > 0)
