"""Convergent profiling on top of branch-on-random (Section 7).

"Because each branch-on-random instruction encodes its own frequency,
it is possible to efficiently implement convergent profiling, by
modifying the sampling frequency as information is collected.  In
convergent profiling, a high sampling rate is used initially, but as
the profile 'converges' the sampling rate can be reduced, as we merely
need to validate that program behavior continues as we have
characterized it.  If the low frequency samples appear out of line
with the characterization, sampling rates can be increased to
re-characterize the behavior."

:class:`ConvergentProfiler` realises that loop per instrumentation
site: every site owns a current freq field (the value a JIT would
patch into the site's brr instruction), escalating the interval as the
site's observed value distribution stabilises, and dropping back to
the initial rate when fresh samples drift away from the converged
characterisation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Hashable, Optional

from ..core.brr import BranchOnRandomUnit, RandomSource
from ..core.condition import check_field, field_for_interval, interval_of_field


@dataclass
class SiteState:
    """Adaptive state of one instrumentation site."""

    field: int
    samples: int = 0
    mean: float = 0.0
    m2: float = 0.0
    converged: bool = False
    converged_mean: float = 0.0
    converged_std: float = 0.0
    recharacterizations: int = 0
    window: deque = dataclass_field(default_factory=lambda: deque(maxlen=16))

    @property
    def variance(self) -> float:
        return self.m2 / (self.samples - 1) if self.samples > 1 else 0.0

    def observe(self, value: float) -> None:
        """Welford update of the running characterisation."""
        self.samples += 1
        delta = value - self.mean
        self.mean += delta / self.samples
        self.m2 += delta * (value - self.mean)
        self.window.append(value)


class ConvergentProfiler:
    """Per-site rate adaptation driven by sample stability."""

    def __init__(
        self,
        initial_interval: int = 16,
        max_interval: int = 4096,
        samples_per_level: int = 32,
        drift_sigma: float = 4.0,
        unit: Optional[RandomSource] = None,
    ) -> None:
        self.initial_field = field_for_interval(initial_interval)
        self.max_field = field_for_interval(max_interval)
        if self.max_field < self.initial_field:
            raise ValueError("max interval below initial interval")
        if samples_per_level < 2:
            raise ValueError("need at least 2 samples per level")
        self.samples_per_level = samples_per_level
        self.drift_sigma = drift_sigma
        self.unit: RandomSource = unit if unit is not None else BranchOnRandomUnit()
        self.sites: Dict[Hashable, SiteState] = {}
        self.encounters = 0
        self.samples = 0

    def _site(self, key: Hashable) -> SiteState:
        state = self.sites.get(key)
        if state is None:
            state = SiteState(field=self.initial_field)
            self.sites[key] = state
        return state

    def current_interval(self, key: Hashable) -> int:
        """The interval currently encoded at a site's brr instruction."""
        return interval_of_field(self._site(key).field)

    def encounter(self, key: Hashable) -> bool:
        """One dynamic encounter of the site; True if it samples."""
        self.encounters += 1
        state = self._site(key)
        taken = self.unit.resolve(check_field(state.field))
        if taken:
            self.samples += 1
        return taken

    def record(self, key: Hashable, value: float) -> None:
        """Feed the instrumented value collected by a taken sample."""
        state = self._site(key)
        state.observe(value)
        if state.converged:
            self._check_drift(state)
        elif (state.samples >= self.samples_per_level
              and state.field < self.max_field):
            # Behaviour stable so far: halve the sampling rate.
            state.field += 1
            state.samples = 0
            state.mean, state.m2 = 0.0, 0.0
        elif state.samples >= self.samples_per_level:
            state.converged = True
            state.converged_mean = state.mean
            state.converged_std = max(state.variance ** 0.5, 1e-12)

    def _check_drift(self, state: SiteState) -> None:
        if len(state.window) < state.window.maxlen:
            return
        window_mean = sum(state.window) / len(state.window)
        # Compare the recent window against the characterisation with a
        # full per-sample sigma margin: robust to the converged_std
        # itself being estimated from few samples.
        if abs(window_mean - state.converged_mean) > self.drift_sigma * max(
            state.converged_std, 1e-12
        ):
            # Out of line with the characterisation: re-characterize.
            state.field = self.initial_field
            state.samples = 0
            state.mean, state.m2 = 0.0, 0.0
            state.converged = False
            state.recharacterizations += 1
            state.window.clear()
