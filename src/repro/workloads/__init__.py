"""Workloads: DaCapo-like invocation streams, the checksum
microbenchmark, the Shakespeare-like text generator, and the
adversarial predictor-aware program family — unified behind the
:mod:`~repro.workloads.registry` (``get_workload(name, **knobs)``).

The per-family builders (``spec_by_name``/``generate_events``,
``build_microbench``, ``generate_text``) remain as deprecation shims.
"""

from .adversarial import (
    AdversarialProgram,
    AdversarialSpec,
    FunctionalOutcome,
    build_adversarial,
)
from .dacapo import (
    DACAPO_BENCHMARKS,
    DacapoSpec,
    event_chunks,
    generate_events,
    method_weights,
    spec_by_name,
)
from .microbench import (
    END_MARKER,
    PROFILE_BASE,
    SITES,
    TEXT_BASE,
    WARM_MARKER,
    Microbench,
    build_cfg,
    build_microbench,
)
from .registry import (
    FAMILIES,
    Workload,
    get_workload,
    list_workloads,
    workload_family,
)
from .text import (
    class_counts,
    classify,
    generate_text,
    reference_checksum,
    site_encounters,
)

__all__ = [
    "AdversarialProgram",
    "AdversarialSpec",
    "FunctionalOutcome",
    "build_adversarial",
    "DACAPO_BENCHMARKS",
    "DacapoSpec",
    "event_chunks",
    "generate_events",
    "method_weights",
    "spec_by_name",
    "END_MARKER",
    "PROFILE_BASE",
    "SITES",
    "TEXT_BASE",
    "WARM_MARKER",
    "Microbench",
    "build_cfg",
    "build_microbench",
    "FAMILIES",
    "Workload",
    "get_workload",
    "list_workloads",
    "workload_family",
    "class_counts",
    "classify",
    "generate_text",
    "reference_checksum",
    "site_encounters",
]
