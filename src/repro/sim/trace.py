"""Dynamic-instruction trace records consumed by the timing model."""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Instruction


class TraceRecord:
    """One retired instruction.

    Attributes
    ----------
    pc:
        Byte address of the instruction.
    instr:
        The decoded instruction (classification and register fields).
    next_pc:
        Byte address of the *architecturally* next instruction — the
        branch target for taken control flow.
    taken:
        For control-flow instructions, whether the transfer happened.
    mem_addr:
        Effective address for loads/stores, else ``None``.
    """

    __slots__ = ("pc", "instr", "next_pc", "taken", "mem_addr")

    def __init__(self, pc: int, instr: Instruction, next_pc: int,
                 taken: bool = False, mem_addr: Optional[int] = None) -> None:
        self.pc = pc
        self.instr = instr
        self.next_pc = next_pc
        self.taken = taken
        self.mem_addr = mem_addr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.instr.is_branch:
            extra = f" taken={self.taken}"
        if self.mem_addr is not None:
            extra += f" mem={self.mem_addr:#x}"
        return f"<TraceRecord pc={self.pc:#x} {self.instr.op.name}{extra}>"
