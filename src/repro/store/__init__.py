"""Unified multi-tier storage layer (see ``docs/engine.md``).

One abstraction behind every content-addressed store in the repo: an
in-process LRU memory tier, the local disk tier (the pre-refactor
on-disk layout, byte-for-byte), and a pluggable shared backend
(``REPRO_STORE_BACKEND``) so many ``repro serve`` replicas share one
corpus.  :class:`~repro.engine.cache.ResultCache` and
:class:`~repro.engine.tracestore.TraceStore` are thin typed views over
one :class:`TieredStore` each; the integrity primitives (policies,
quarantine, digests — ``docs/integrity.md``) live here too and are
re-exported by :mod:`repro.engine.integrity`.
"""

from .backend import (
    BACKEND_ENV,
    BREAKER_ENV,
    BREAKER_STATES,
    Backend,
    BackendUnavailable,
    CircuitBreakerBackend,
    FilesystemBackend,
    backend_from_env,
    backend_spec_from_env,
    breaker_enabled_by_env,
    breaker_from_env,
    make_backend,
    maybe_wrap_breaker,
    register_backend_scheme,
)
from .base import (
    Store,
    TierCounters,
    atomic_write_bytes,
    atomic_write_with,
)
from .disk import DiskTier
from .integrity import (
    INTEGRITY_POLICIES,
    QUARANTINE_DIR,
    REASON_SUFFIX,
    IntegrityCounters,
    IntegrityError,
    check_policy,
    integrity_policy_from_env,
    payload_digest,
    purge_quarantine,
    quarantine_entry,
    quarantine_root,
    quarantined_entries,
)
from .memory import (
    DEFAULT_MEMORY_BYTES,
    DEFAULT_MEMORY_ENTRIES,
    MemoryTier,
    memory_bytes_from_env,
    memory_entries_from_env,
)
from .tiered import Codec, TieredStore

__all__ = [
    "BACKEND_ENV",
    "BREAKER_ENV",
    "BREAKER_STATES",
    "Backend",
    "BackendUnavailable",
    "CircuitBreakerBackend",
    "FilesystemBackend",
    "backend_from_env",
    "backend_spec_from_env",
    "breaker_enabled_by_env",
    "breaker_from_env",
    "make_backend",
    "maybe_wrap_breaker",
    "register_backend_scheme",
    "Store",
    "TierCounters",
    "atomic_write_bytes",
    "atomic_write_with",
    "DiskTier",
    "INTEGRITY_POLICIES",
    "QUARANTINE_DIR",
    "REASON_SUFFIX",
    "IntegrityCounters",
    "IntegrityError",
    "check_policy",
    "integrity_policy_from_env",
    "payload_digest",
    "purge_quarantine",
    "quarantine_entry",
    "quarantine_root",
    "quarantined_entries",
    "DEFAULT_MEMORY_BYTES",
    "DEFAULT_MEMORY_ENTRIES",
    "MemoryTier",
    "memory_bytes_from_env",
    "memory_entries_from_env",
    "Codec",
    "TieredStore",
]
