"""repro — a full reproduction of *Branch-on-Random* (Lee & Zilles, CGO 2008).

The package implements the proposed branch-on-random instruction and
every substrate the paper's evaluation depends on:

- :mod:`repro.core` — the instruction's hardware model (LFSR, condition
  unit, superscalar decode integration, cost model);
- :mod:`repro.isa` — a small RISC-style instruction set with the
  architected ``brr`` opcode, assembler and disassembler;
- :mod:`repro.sim` — a functional simulator including the SIGILL-style
  trap-emulation path used by the paper for its accuracy experiments;
- :mod:`repro.timing` — a cycle-level out-of-order timing simulator
  configured per Section 5.1 (4-wide, 80-entry ROB, tournament
  predictor, two-level caches);
- :mod:`repro.sampling` — event-level sampling frameworks (software
  counter, hardware counter, branch-on-random, convergent);
- :mod:`repro.instrument` — CFG IR and the Arnold-Ryder
  No-Duplication / Full-Duplication transformations;
- :mod:`repro.jvm` — a mini JVM substrate with a baseline compiler;
- :mod:`repro.workloads` — DaCapo-like synthetic workloads and the
  Section 5.3 checksum microbenchmark;
- :mod:`repro.profiles` — profiles and the overlap-accuracy metric;
- :mod:`repro.experiments` — one runner per paper table/figure;
- :mod:`repro.analysis` — statistics and overhead decomposition;
- :mod:`repro.api` — the **stable public façade**: keyword-only
  ``run_<figure>()`` functions plus the engine types
  (:class:`~repro.api.ExperimentEngine`,
  :class:`~repro.api.EngineConfig`, :class:`~repro.api.WindowSpec`),
  re-exported here.  Script against ``repro.api`` (or these
  re-exports); everything else may change without notice — see
  ``docs/api.md``.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    api,
    core,
    experiments,
    instrument,
    isa,
    jvm,
    profiles,
    sampling,
    sim,
    timing,
    workloads,
)
from .api import (
    EngineConfig,
    ExperimentEngine,
    FigureResult,
    WindowFailure,
    WindowSpec,
    is_failure,
    run_cost,
    run_figure2,
    run_figure9,
    run_figure10,
    run_figure12,
    run_figure13,
    run_figure14,
    run_scorecard,
    run_sensitivity,
    run_windows,
)

__all__ = [
    "analysis",
    "api",
    "core",
    "experiments",
    "instrument",
    "isa",
    "jvm",
    "profiles",
    "sampling",
    "sim",
    "timing",
    "workloads",
    "__version__",
    "EngineConfig",
    "ExperimentEngine",
    "FigureResult",
    "WindowFailure",
    "WindowSpec",
    "is_failure",
    "run_cost",
    "run_figure2",
    "run_figure9",
    "run_figure10",
    "run_figure12",
    "run_figure13",
    "run_figure14",
    "run_scorecard",
    "run_sensitivity",
    "run_windows",
]
