"""Profile containers and the Section 4.1 overlap-accuracy metric."""

from .profile import Profile, overlap_accuracy

__all__ = ["Profile", "overlap_accuracy"]
