"""Cycle-level out-of-order pipeline model.

The model is trace-driven: the functional simulator supplies the
retired instruction stream and the pipeline computes, per instruction,
its fetch, decode, execute-complete and commit cycles subject to the
Section 5.1 machine's resource constraints:

* fetch delivers at most ``fetch_width`` instructions per cycle and
  *stops at a predicted-taken branch*; instruction-cache misses stall
  it;
* decode/rename is ``decode_width`` per cycle, in order, and stalls
  when the 80-entry ROB or the physical register pool is exhausted;
* execution is dataflow-limited (operands forwarded at completion)
  with ``issue_width`` instructions starting per cycle; loads pay the
  data-cache hierarchy latency;
* commit is in-order, ``commit_width`` per cycle;
* conditional branches and indirect jumps resolve in the back end
  (minimum 11-cycle misprediction penalty); unconditional direct
  branches and — per Section 3.3 — branch-on-random resolve at decode,
  the 5th pipeline stage, so a taken branch-on-random pays only a
  short front-end flush.

All six overhead sources of Section 2 are represented: extra
instructions consume fetch/decode/commit slots and ROB entries (1, 2),
extra destinations consume rename registers (3), sampling counters
generate loads and stores through the D-cache (4), sampling branches
mispredict (5), and counter-based sampling branches — unlike brr —
train and pollute the shared predictor and its global history (6).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Optional

from ..isa.instructions import Op
from ..sim.trace import TraceRecord
from .caches import Hierarchy
from .config import TimingConfig
from .predictors import Btb, ReturnAddressStack, Tournament


class _Bandwidth:
    """Allocates slots of ``width`` per cycle, earliest-first.

    ``_counts`` maps cycle -> slots used.  Allocation requests are
    monotonically non-decreasing (pipeline stages only move forward),
    so entries more than :data:`PRUNE_WINDOW` cycles behind the newest
    allocation can never be consulted again and are dropped once the
    map exceeds :data:`PRUNE_THRESHOLD` entries — keeping memory
    bounded over arbitrarily long simulation windows (the regression
    test in ``tests/test_memory_bounds.py`` pins this).
    """

    #: Map size that triggers a prune pass.
    PRUNE_THRESHOLD = 16384
    #: Cycles of history preserved behind the newest allocation.
    PRUNE_WINDOW = 4096

    __slots__ = ("width", "_counts")

    def __init__(self, width: int) -> None:
        self.width = width
        self._counts: Dict[int, int] = {}

    def allocate(self, ready: int) -> int:
        counts = self._counts
        cycle = ready
        while counts.get(cycle, 0) >= self.width:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        if len(counts) > self.PRUNE_THRESHOLD:
            cutoff = cycle - self.PRUNE_WINDOW
            stale = [key for key in counts if key < cutoff]
            for key in stale:
                del counts[key]
        return cycle


@dataclass
class TimingStats:
    """Counters accumulated over a simulated window."""

    instructions: int = 0
    cycles: int = 0
    cond_branches: int = 0
    cond_mispredicts: int = 0
    brr_resolved: int = 0
    brr_taken: int = 0
    frontend_redirects: int = 0
    backend_redirects: int = 0
    brr_packet_splits: int = 0
    fetch_breaks: int = 0
    rob_stall_cycles: int = 0
    loads: int = 0
    stores: int = 0
    icache_misses: int = 0
    dcache_misses: int = 0
    l2_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def branch_accuracy(self) -> float:
        if not self.cond_branches:
            return 1.0
        return 1.0 - self.cond_mispredicts / self.cond_branches

    def __sub__(self, other: "TimingStats") -> "TimingStats":
        return TimingStats(**{
            name: getattr(self, name) - getattr(other, name)
            for name in _STATS_FIELD_NAMES
        })

    def copy(self) -> "TimingStats":
        return TimingStats(
            **{name: getattr(self, name) for name in _STATS_FIELD_NAMES}
        )

    def to_dict(self) -> Dict[str, int]:
        """Plain-scalar form, safe to JSON-encode or cross processes."""
        return {name: getattr(self, name) for name in _STATS_FIELD_NAMES}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "TimingStats":
        """Inverse of :meth:`to_dict`; rejects unknown counter names."""
        unknown = set(data) - set(_STATS_FIELD_NAMES)
        if unknown:
            raise ValueError(f"unknown TimingStats fields: {sorted(unknown)}")
        return cls(**data)


#: Counter names, resolved once — per-call ``dataclasses.fields()``
#: introspection was a measurable cost on the snapshot-heavy paths.
_STATS_FIELD_NAMES = tuple(f.name for f in fields(TimingStats))


class TimingSimulator:
    """Dependence/bandwidth timing model over a retired-instruction trace."""

    __slots__ = (
        "config", "hierarchy", "predictor", "btb", "ras", "stats",
        "_fetch_cycle", "_fetch_slots", "_last_line", "_last_decode",
        "_decode_bw", "_issue_bw", "_commit_bw", "_last_commit",
        "_final_commit", "_reg_ready", "_rob", "_pregs", "_preg_budget",
        "_next_brr_slot",
    )

    def __init__(self, config: Optional[TimingConfig] = None) -> None:
        self.config = config or TimingConfig()
        cfg = self.config
        self.hierarchy = Hierarchy(cfg)
        self.predictor = Tournament(
            cfg.gshare_history_bits, cfg.bimodal_entries, cfg.chooser_entries
        )
        self.btb = Btb(cfg.btb_entries)
        self.ras = ReturnAddressStack(cfg.ras_entries)
        self.stats = TimingStats()

        self._fetch_cycle = 0
        self._fetch_slots = cfg.fetch_width
        self._last_line: Optional[int] = None
        self._last_decode = 0
        self._decode_bw = _Bandwidth(cfg.decode_width)
        self._issue_bw = _Bandwidth(cfg.issue_width)
        self._commit_bw = _Bandwidth(cfg.commit_width)
        self._last_commit = 0
        self._final_commit = 0
        self._reg_ready: List[int] = [0] * 16
        # Ring of commit cycles for in-flight ROB entries / dest-writing
        # instructions (physical register pool).
        self._rob: "deque[int]" = deque()
        self._pregs: "deque[int]" = deque()
        self._preg_budget = max(1, cfg.phys_regs - 16)
        # Shared-LFSR arbitration (footnote 3): the next decode cycle
        # with a free LFSR read port.
        self._next_brr_slot = 0

    # ------------------------------------------------------------------

    def _redirect(self, resume: int) -> None:
        """Squash the front end; fetch restarts at ``resume``."""
        if resume > self._fetch_cycle:
            self._fetch_cycle = resume
        self._fetch_slots = self.config.fetch_width
        self._last_line = None

    def _fetch_break(self, fetch_cycle: int) -> None:
        """Predicted-taken branch: fetch stops, resumes next cycle at
        the target."""
        self.stats.fetch_breaks += 1
        if fetch_cycle + 1 > self._fetch_cycle:
            self._fetch_cycle = fetch_cycle + 1
        self._fetch_slots = self.config.fetch_width
        self._last_line = None

    # ------------------------------------------------------------------

    def run(self, trace: Iterable[TraceRecord]) -> TimingStats:
        """Simulate a trace; returns the cumulative stats object."""
        for record in trace:
            self.step(record)
        return self.stats

    def step(self, record: TraceRecord) -> None:
        """Account one retired instruction."""
        cfg = self.config
        stats = self.stats
        instr = record.instr
        if instr is None:
            raise ValueError(
                "timing simulation requires decoded instructions; "
                "trap-emulated traces are functional-only"
            )
        pc = record.pc
        op = instr.op

        # ---------------- fetch ----------------
        line = pc // cfg.line_bytes
        if line != self._last_line:
            latency = self.hierarchy.fetch(pc)
            if latency > cfg.l1_latency:
                self._fetch_cycle += latency - cfg.l1_latency
                self._fetch_slots = cfg.fetch_width
            self._last_line = line
        fetch = self._fetch_cycle
        self._fetch_slots -= 1
        if self._fetch_slots == 0:
            self._fetch_cycle = fetch + 1
            self._fetch_slots = cfg.fetch_width

        # ---------------- predict ----------------
        # mispredict kind: None, "front" (resolved at decode) or
        # "back" (resolved at execute).
        mispredict: Optional[str] = None
        predicted_taken = False
        if op is Op.BRR or op is Op.BRRA:
            stats.brr_resolved += 1
            if record.taken:
                stats.brr_taken += 1
            if cfg.brr_uses_predictor:
                # Ablation: brr behaves as an ordinary branch.
                if op is Op.BRRA:
                    target = self.btb.lookup(pc)
                    predicted_taken = target is not None
                    if not predicted_taken:
                        mispredict = "front" if cfg.brr_resolve_at_decode else "back"
                    self.btb.insert(pc, record.next_pc)
                else:
                    predicted_taken, mispredict = self._predict_conditional(
                        pc, record,
                        resolve="front" if cfg.brr_resolve_at_decode else "back",
                    )
            else:
                # Section 3.3: always predicted not-taken, never entered
                # into any prediction structure.
                if record.taken:
                    mispredict = "front" if cfg.brr_resolve_at_decode else "back"
        elif instr.is_cond_branch:
            stats.cond_branches += 1
            predicted_taken, mispredict = self._predict_conditional(
                pc, record, resolve="back"
            )
            if mispredict:
                stats.cond_mispredicts += 1
            self.predictor.record(mispredict is None)
        elif op is Op.JMP or op is Op.JAL:
            target = self.btb.lookup(pc)
            predicted_taken = target == record.next_pc
            if not predicted_taken:
                mispredict = "front"  # resolved at decode
            self.btb.insert(pc, record.next_pc)
            if op is Op.JAL:
                self.ras.push(pc + 4)
        elif op is Op.JR:
            if instr.is_return:
                predicted = self.ras.pop()
            else:
                predicted = self.btb.lookup(pc)
                self.btb.insert(pc, record.next_pc)
            if predicted == record.next_pc:
                predicted_taken = True
            else:
                mispredict = "back"

        # ---------------- decode / rename ----------------
        ready = fetch + cfg.frontend_depth
        if ready < self._last_decode:
            ready = self._last_decode
        if cfg.brr_shared_lfsr and op is Op.BRR:
            # One LFSR, one resolution per cycle: a packet with more
            # branch-on-randoms than LFSRs is split (footnote 3).
            if ready < self._next_brr_slot:
                stats.brr_packet_splits += 1
                ready = self._next_brr_slot
        commits_at_decode = (
            cfg.brr_commits_at_decode and (op is Op.BRR or op is Op.BRRA)
        )
        dest = instr.dest()
        if not commits_at_decode:
            if len(self._rob) >= cfg.rob_entries:
                free_at = self._rob.popleft()
                if free_at > ready:
                    stats.rob_stall_cycles += free_at - ready
                    ready = free_at
            if dest is not None and len(self._pregs) >= self._preg_budget:
                free_at = self._pregs.popleft()
                if free_at > ready:
                    ready = free_at
        decode = self._decode_bw.allocate(ready)
        self._last_decode = decode
        if cfg.brr_shared_lfsr and op is Op.BRR:
            self._next_brr_slot = decode + 1

        # ---------------- execute & commit ----------------
        if commits_at_decode:
            # A not-taken brr "can be committed at decode time"; a taken
            # one redirects fetch from decode.  Either way it occupies
            # no ROB entry and writes no register.
            complete = decode
            commit = decode
        else:
            ready_ex = decode + 1
            for src in instr.sources():
                src_ready = self._reg_ready[src]
                if src_ready > ready_ex:
                    ready_ex = src_ready
            issue = self._issue_bw.allocate(ready_ex)
            if instr.is_load:
                stats.loads += 1
                complete = issue + max(1, self.hierarchy.data(record.mem_addr))
            elif instr.is_store:
                stats.stores += 1
                self.hierarchy.data(record.mem_addr)  # fills the line
                complete = issue + 1
            else:
                complete = issue + instr.latency
            if dest is not None:
                self._reg_ready[dest] = complete
            ready_commit = complete + 1
            if ready_commit < self._last_commit:
                ready_commit = self._last_commit
            commit = self._commit_bw.allocate(ready_commit)
            self._last_commit = commit
            self._rob.append(commit)
            if dest is not None:
                self._pregs.append(commit)
        if commit > self._final_commit:
            self._final_commit = commit

        # ---------------- steer fetch ----------------
        if mispredict == "front":
            stats.frontend_redirects += 1
            self._redirect(decode + 1)
        elif mispredict == "back":
            stats.backend_redirects += 1
            resume = complete + 1
            minimum = fetch + cfg.backend_penalty
            if resume < minimum:
                resume = minimum
            self._redirect(resume)
        elif predicted_taken:
            self._fetch_break(fetch)

        stats.instructions += 1
        stats.cycles = self._final_commit + 1
        stats.icache_misses = self.hierarchy.l1i.misses
        stats.dcache_misses = self.hierarchy.l1d.misses
        stats.l2_misses = self.hierarchy.l2.misses

    def _predict_conditional(self, pc: int, record: TraceRecord, resolve: str):
        """Tournament + BTB prediction for a conditional branch.

        Returns ``(predicted_taken, mispredict_kind_or_None)`` and
        trains the predictor and BTB with the actual outcome.
        """
        pred = self.predictor.predict(pc)
        target = self.btb.lookup(pc) if pred else None
        predicted_taken = pred and target is not None
        if predicted_taken:
            correct = record.taken and target == record.next_pc
        else:
            correct = not record.taken
        self.predictor.update(pc, record.taken)
        if record.taken:
            self.btb.insert(pc, record.next_pc)
        return predicted_taken, (None if correct else resolve)

    # ------------------------------------------------------------------

    def snapshot(self) -> TimingStats:
        """Copy of the counters, for windowed (warm-up aware) runs."""
        return self.stats.copy()
