"""Tests for branch predictors, BTB and RAS."""

import pytest

from repro.timing.predictors import (
    Bimodal,
    Btb,
    Gshare,
    ReturnAddressStack,
    Tournament,
    TwoBitTable,
)


class TestTwoBitTable:
    def test_initial_weakly_not_taken(self):
        table = TwoBitTable(16)
        assert not table.predict(0)

    def test_saturates_up(self):
        table = TwoBitTable(16)
        for _ in range(10):
            table.update(3, True)
        assert table.table[3] == 3
        assert table.predict(3)

    def test_saturates_down(self):
        table = TwoBitTable(16)
        for _ in range(10):
            table.update(3, False)
        assert table.table[3] == 0

    def test_hysteresis(self):
        table = TwoBitTable(16)
        table.update(0, True)
        table.update(0, True)  # counter 3
        table.update(0, False)  # counter 2: still predicts taken
        assert table.predict(0)

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            TwoBitTable(10)

    def test_index_wraps(self):
        table = TwoBitTable(16)
        table.update(16, True)
        table.update(16, True)
        assert table.predict(0)


class TestBimodal:
    def test_learns_bias(self):
        predictor = Bimodal(1024)
        for _ in range(4):
            predictor.update(0x100, True)
        assert predictor.predict(0x100)
        assert not predictor.predict(0x104)

    def test_aliasing(self):
        """Two PCs 4KB apart in a 1K-entry table share a counter —
        the destructive interference of overhead source 6."""
        predictor = Bimodal(1024)
        for _ in range(4):
            predictor.update(0x0, True)
        assert predictor.predict(1024 * 4)  # aliases to index 0


class TestGshare:
    def test_learns_alternating_pattern(self):
        """gshare captures history-correlated patterns bimodal cannot."""
        predictor = Gshare(8)
        outcome = True
        correct = 0
        for trial in range(400):
            prediction = predictor.predict(0x40)
            if trial >= 200:
                correct += prediction == outcome
            predictor.update(0x40, outcome)
            outcome = not outcome
        assert correct == 200  # perfect once trained

    def test_history_shifts(self):
        predictor = Gshare(4)
        predictor.update(0, True)
        predictor.update(0, False)
        predictor.update(0, True)
        assert predictor.history == 0b101

    def test_history_bounded(self):
        predictor = Gshare(4)
        for _ in range(100):
            predictor.update(0, True)
        assert predictor.history == 0b1111

    def test_bad_history_len(self):
        with pytest.raises(ValueError):
            Gshare(0)


class TestTournament:
    def test_chooser_moves_to_gshare_for_patterns(self):
        predictor = Tournament(8, 1 << 10, 1 << 6)
        outcome = True
        for _ in range(600):
            predictor.update(0x80, outcome)
            outcome = not outcome
        # After training, the tournament should track the alternation.
        hits = 0
        for _ in range(20):
            if predictor.predict(0x80) == outcome:
                hits += 1
            predictor.update(0x80, outcome)
            outcome = not outcome
        assert hits >= 18

    def test_biased_branch_high_accuracy(self):
        predictor = Tournament(8, 1 << 10, 1 << 6)
        for _ in range(50):
            predictor.update(0x10, True)
        assert predictor.predict(0x10)

    def test_accuracy_accounting(self):
        predictor = Tournament()
        predictor.record(True)
        predictor.record(False)
        assert predictor.predictions == 2
        assert predictor.mispredictions == 1
        assert predictor.accuracy == 0.5

    def test_accuracy_empty(self):
        assert Tournament().accuracy == 1.0


class TestBtb:
    def test_miss_then_hit(self):
        btb = Btb(64)
        assert btb.lookup(0x100) is None
        btb.insert(0x100, 0x200)
        assert btb.lookup(0x100) == 0x200
        assert btb.hits == 1 and btb.misses == 1

    def test_conflict_eviction(self):
        btb = Btb(64)
        btb.insert(0x100, 0x200)
        btb.insert(0x100 + 64 * 4, 0x300)  # same index, different tag
        assert btb.lookup(0x100) is None

    def test_non_pow2_rejected(self):
        with pytest.raises(ValueError):
            Btb(100)


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x10)
        ras.push(0x20)
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_overflow_wraps(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)  # overwrites 1
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None

    def test_depth_one(self):
        ras = ReturnAddressStack(1)
        ras.push(5)
        assert ras.pop() == 5
        assert ras.pop() is None

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError):
            ReturnAddressStack(0)
