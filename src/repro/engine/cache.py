"""Content-addressed on-disk cache of window results.

Results live under ``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json``
where ``key`` is the spec's canonical digest (which already folds in
:data:`~repro.engine.spec.SCHEMA_VERSION`, seeds and every simulation
parameter — see ``docs/engine.md``).  Entries are written atomically
(temp file + ``os.replace``) so concurrent workers and concurrent
processes can share one cache directory safely; a corrupt or
unreadable entry is treated as a miss and discarded.

The root defaults to ``~/.cache/repro`` and is overridden by
``REPRO_CACHE_DIR``; ``REPRO_CACHE=0`` disables caching entirely.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, Optional

from .spec import SCHEMA_VERSION, WindowSpec


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no")


class ResultCache:
    """Content-addressed store mapping spec digests to result payloads."""

    def __init__(self, root: Optional[pathlib.Path] = None,
                 enabled: bool = True) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def get(self, spec: WindowSpec) -> Optional[Dict[str, Any]]:
        """The cached payload for ``spec``, or ``None`` on a miss."""
        if not self.enabled:
            return None
        path = self._path(spec.cache_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            payload = entry["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError):
            # Corrupt entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, spec: WindowSpec, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` for ``spec`` (atomic, last-writer-wins).

        The entry is flushed and fsynced *before* the rename, so a
        window that completed before a crash or SIGKILL is durably
        cached — the invariant ``repro resume`` relies on to execute
        only the missing windows.  Returns True when the entry landed.
        """
        if not self.enabled:
            return False
        path = self._path(spec.cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"spec": spec.to_dict(), "result": payload}
        handle = tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", dir=path.parent,
            prefix=".tmp-", suffix=".json", delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
            return True
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return False

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).  Only the versioned payload
    # subtrees are touched: the trace store may nest its own tree under
    # this root (``<root>/traces`` by default) and manages it itself.

    def _version_dirs(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith("v") \
                    and child.name[1:].isdigit():
                yield child

    def stats(self) -> Dict[str, Any]:
        """Entry/byte counts of the current-version cache."""
        entries = 0
        total = 0
        version_dir = self.root / f"v{SCHEMA_VERSION}"
        if version_dir.is_dir():
            for path in version_dir.rglob("*.json"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    continue
        return {"root": str(self.root), "version": SCHEMA_VERSION,
                "entries": entries, "bytes": total}

    def prune(self) -> int:
        """Drop stale-version subtrees and leftover temp files; returns
        the number of files removed."""
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            if version_dir.name == f"v{SCHEMA_VERSION}":
                continue
            removed += sum(1 for p in version_dir.rglob("*") if p.is_file())
            shutil.rmtree(version_dir, ignore_errors=True)
        for version_dir in self._version_dirs():
            for stray in version_dir.rglob(".tmp-*"):
                with contextlib.suppress(OSError):
                    stray.unlink()
                    removed += 1
        return removed

    def clear(self) -> int:
        """Delete every cached payload (all versions); returns the count."""
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            removed += sum(1 for p in version_dir.rglob("*.json"))
            shutil.rmtree(version_dir, ignore_errors=True)
        return removed
