"""Instruction set definition for the reproduction's RISC-style ISA.

The evaluation needs an ISA only as a carrier for the phenomena the
paper studies — instruction footprint, counter loads/stores, branch
kinds resolved at different pipeline stages — so the set is small:
ALU register and immediate forms, byte/word loads and stores,
conditional branches, direct and indirect jumps and calls, and the
paper's additions:

``brr``
    branch-on-random, encoded per Figure 5 as *opcode | 4-bit freq |
    target*; taken with probability ``(1/2)**(freq+1)``.
``brra``
    the footnote-4 variant: a 100%-taken branch-on-random used for
    infrequently executed unconditional jumps (e.g. the jump back from
    out-of-line instrumentation) so they do not occupy BTB entries.
``marker``
    the magic marker instruction used to delimit warm-up and
    measurement windows in timing simulation (Section 5.1).

All instructions are 32 bits.  There are 16 general registers r0..r15;
``r15`` doubles as the link register for ``jal``, and ``r14`` is the
conventional stack pointer ``sp``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Number of architectural registers.
NUM_REGS = 16

#: Link register written by ``jal``.
LINK_REG = 15

#: Bytes per instruction word.
WORD = 4


class Format(enum.Enum):
    """Encoding format families."""

    R = "r"          # op rd, ra, rb
    I = "i"          # op rd, ra, imm18
    LI = "li"        # op rd, imm22
    MEM = "mem"      # op rd, imm(ra)
    BRANCH = "br"    # op ra, rb, target
    JUMP = "jump"    # op target26
    JR = "jr"        # op ra
    BRR = "brr"      # op freq4, target22
    MARKER = "mark"  # op imm26
    NONE = "none"    # op


class Op(enum.IntEnum):
    """Opcode values (bits 31:26 of the word)."""

    ADD = 0x01
    SUB = 0x02
    AND = 0x03
    OR = 0x04
    XOR = 0x05
    SHL = 0x06
    SHR = 0x07
    MUL = 0x08
    SLT = 0x09

    ADDI = 0x10
    ANDI = 0x11
    ORI = 0x12
    XORI = 0x13
    SHLI = 0x14
    SHRI = 0x15
    SLTI = 0x16
    LI = 0x17

    LW = 0x18
    LB = 0x19
    SW = 0x1A
    SB = 0x1B

    BEQ = 0x20
    BNE = 0x21
    BLT = 0x22
    BGE = 0x23

    JMP = 0x28
    JAL = 0x29
    JR = 0x2A

    BRR = 0x30
    BRRA = 0x31

    MARKER = 0x38
    NOP = 0x3E
    HALT = 0x3F


#: Format of every opcode.
FORMATS: Dict[Op, Format] = {
    Op.ADD: Format.R, Op.SUB: Format.R, Op.AND: Format.R, Op.OR: Format.R,
    Op.XOR: Format.R, Op.SHL: Format.R, Op.SHR: Format.R, Op.MUL: Format.R,
    Op.SLT: Format.R,
    Op.ADDI: Format.I, Op.ANDI: Format.I, Op.ORI: Format.I,
    Op.XORI: Format.I, Op.SHLI: Format.I, Op.SHRI: Format.I,
    Op.SLTI: Format.I,
    Op.LI: Format.LI,
    Op.LW: Format.MEM, Op.LB: Format.MEM, Op.SW: Format.MEM,
    Op.SB: Format.MEM,
    Op.BEQ: Format.BRANCH, Op.BNE: Format.BRANCH, Op.BLT: Format.BRANCH,
    Op.BGE: Format.BRANCH,
    Op.JMP: Format.JUMP, Op.JAL: Format.JUMP, Op.JR: Format.JR,
    Op.BRR: Format.BRR, Op.BRRA: Format.JUMP,
    Op.MARKER: Format.MARKER,
    Op.NOP: Format.NONE, Op.HALT: Format.NONE,
}

#: Execution latency classes used by the timing model (cycles in the
#: functional unit, excluding memory hierarchy time for loads).
LATENCY: Dict[Op, int] = {Op.MUL: 3}
DEFAULT_LATENCY = 1


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction.

    ``imm`` holds the sign-extended immediate/offset; for control flow
    it is a *word* offset relative to the next instruction, matching
    the hardware's PC-relative encoding.
    """

    op: Op
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    freq: int = 0

    # ----- classification helpers used by the simulators -------------

    @property
    def format(self) -> Format:
        return FORMATS[self.op]

    @property
    def is_branch(self) -> bool:
        """Any control transfer (conditional, jump, call, return, brr)."""
        return self.op in (
            Op.BEQ, Op.BNE, Op.BLT, Op.BGE,
            Op.JMP, Op.JAL, Op.JR, Op.BRR, Op.BRRA,
        )

    @property
    def is_cond_branch(self) -> bool:
        """A conditional branch resolved in the back end."""
        return self.op in (Op.BEQ, Op.BNE, Op.BLT, Op.BGE)

    @property
    def is_brr(self) -> bool:
        return self.op in (Op.BRR, Op.BRRA)

    @property
    def is_uncond_direct(self) -> bool:
        return self.op in (Op.JMP, Op.JAL, Op.BRRA)

    @property
    def is_call(self) -> bool:
        return self.op is Op.JAL

    @property
    def is_return(self) -> bool:
        return self.op is Op.JR and self.ra == LINK_REG

    @property
    def is_indirect(self) -> bool:
        return self.op is Op.JR

    @property
    def is_load(self) -> bool:
        return self.op in (Op.LW, Op.LB)

    @property
    def is_store(self) -> bool:
        return self.op in (Op.SW, Op.SB)

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store

    @property
    def latency(self) -> int:
        return LATENCY.get(self.op, DEFAULT_LATENCY)

    def sources(self) -> Tuple[int, ...]:
        """Architectural registers read by this instruction."""
        fmt = self.format
        if fmt is Format.R:
            return (self.ra, self.rb)
        if fmt in (Format.I,):
            return (self.ra,)
        if fmt is Format.MEM:
            # Loads read the base; stores read base and data register.
            if self.is_store:
                return (self.ra, self.rd)
            return (self.ra,)
        if fmt is Format.BRANCH:
            return (self.ra, self.rb)
        if fmt is Format.JR:
            return (self.ra,)
        return ()

    def dest(self) -> Optional[int]:
        """Architectural register written, if any."""
        fmt = self.format
        if fmt in (Format.R, Format.I, Format.LI):
            return self.rd
        if self.is_load:
            return self.rd
        if self.op is Op.JAL:
            return LINK_REG
        return None


class EncodingError(ValueError):
    """Raised when a field does not fit its encoding slot."""


class InvalidOpcodeError(Exception):
    """Raised when decoding an unknown opcode (the trap the paper's
    SIGILL-based emulation relies on)."""

    def __init__(self, word: int, pc: Optional[int] = None) -> None:
        self.word = word
        self.pc = pc
        where = f" at pc={pc:#x}" if pc is not None else ""
        super().__init__(f"invalid opcode in word {word:#010x}{where}")


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value < NUM_REGS:
        raise EncodingError(f"{name} must be a register 0..{NUM_REGS - 1}, got {value}")
    return value


def _check_signed(value: int, bits: int, name: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodingError(f"{name} {value} does not fit in {bits} signed bits")
    return value & ((1 << bits) - 1)


def _check_unsigned(value: int, bits: int, name: str) -> int:
    if not 0 <= value < (1 << bits):
        raise EncodingError(f"{name} {value} does not fit in {bits} unsigned bits")
    return value


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    op = instr.op
    word = int(op) << 26
    fmt = FORMATS[op]
    if fmt is Format.R:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _check_reg(instr.rb, "rb") << 14
    elif fmt is Format.I:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _check_signed(instr.imm, 18, "imm")
    elif fmt is Format.LI:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_signed(instr.imm, 22, "imm")
    elif fmt is Format.MEM:
        word |= _check_reg(instr.rd, "rd") << 22
        word |= _check_reg(instr.ra, "ra") << 18
        word |= _check_signed(instr.imm, 18, "offset")
    elif fmt is Format.BRANCH:
        word |= _check_reg(instr.ra, "ra") << 22
        word |= _check_reg(instr.rb, "rb") << 18
        word |= _check_signed(instr.imm, 18, "offset")
    elif fmt is Format.JUMP:
        word |= _check_signed(instr.imm, 26, "offset")
    elif fmt is Format.JR:
        word |= _check_reg(instr.ra, "ra") << 22
    elif fmt is Format.BRR:
        word |= _check_unsigned(instr.freq, 4, "freq") << 22
        word |= _check_signed(instr.imm, 22, "offset")
    elif fmt is Format.MARKER:
        word |= _check_unsigned(instr.imm, 26, "marker id")
    # Format.NONE: opcode only.
    return word


_OP_BY_VALUE = {int(op): op for op in Op}


def decode(word: int, pc: Optional[int] = None) -> Instruction:
    """Decode a 32-bit word; raise :class:`InvalidOpcodeError` if the
    opcode is not architected."""
    opval = (word >> 26) & 0x3F
    op = _OP_BY_VALUE.get(opval)
    if op is None:
        raise InvalidOpcodeError(word, pc)
    fmt = FORMATS[op]
    if fmt is Format.R:
        return Instruction(op, rd=(word >> 22) & 0xF, ra=(word >> 18) & 0xF,
                           rb=(word >> 14) & 0xF)
    if fmt in (Format.I, Format.MEM):
        return Instruction(op, rd=(word >> 22) & 0xF, ra=(word >> 18) & 0xF,
                           imm=_sext(word & 0x3FFFF, 18))
    if fmt is Format.LI:
        return Instruction(op, rd=(word >> 22) & 0xF,
                           imm=_sext(word & 0x3FFFFF, 22))
    if fmt is Format.BRANCH:
        return Instruction(op, ra=(word >> 22) & 0xF, rb=(word >> 18) & 0xF,
                           imm=_sext(word & 0x3FFFF, 18))
    if fmt is Format.JUMP:
        return Instruction(op, imm=_sext(word & 0x3FFFFFF, 26))
    if fmt is Format.JR:
        return Instruction(op, ra=(word >> 22) & 0xF)
    if fmt is Format.BRR:
        return Instruction(op, freq=(word >> 22) & 0xF,
                           imm=_sext(word & 0x3FFFFF, 22))
    if fmt is Format.MARKER:
        return Instruction(op, imm=word & 0x3FFFFFF)
    return Instruction(op)
