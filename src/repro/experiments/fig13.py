"""Figures 13 and 14 and the Section 5.3 baseline characterisation.

One sweep over the checksum microbenchmark drives both figures:

* Figure 13 — percent execution overhead vs. sampling interval for the
  eight framework combinations (cbs/brr x no-dup/full-dup x with and
  without the instrumentation payload);
* Figure 14 — average added cycles per dynamically encountered
  sampling site (Full-Duplication curves), where the paper reports
  3.19 cycles for a 50% branch-on-random, a ~0.1-cycle asymptote, and
  a 10-20x gap to counter-based sampling above interval 64.

The sweep also measures the ``full-instrumentation`` reference the
paper quotes (4.3 cycles per site on their machine) and the baseline
statistics of Section 5.3 (branch prediction accuracy, cache hit
rates).

The sweep's window space is a :class:`~repro.stats.WindowPopulation`:
two *mandatory* baseline cells (every other point normalises against
them) plus one cell per (kind, duplication, payload, interval) point,
stratified by curve.  Under a non-exhaustive
:class:`~repro.stats.SamplingPlan` only the selected interval points
run and the sweep carries a :class:`~repro.stats.SamplingSummary`
with a per-curve mean-overhead CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.brr import BranchOnRandomUnit
from ..engine import ExperimentEngine, WindowSpec, is_failure, run_population
from ..stats import (
    Cell,
    SamplingPlan,
    SamplingSummary,
    WindowPopulation,
    estimate_mean,
)
from ..timing.config import TimingConfig
from ..timing.runner import WindowResult, cycles_per_site, overhead_percent, time_window
from ..workloads.microbench import END_MARKER, WARM_MARKER, Microbench

#: Interval sweep of Figure 13/14.
INTERVALS: Tuple[int, ...] = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: (kind, duplication) framework combinations.
COMBOS: Tuple[Tuple[str, str], ...] = (
    ("cbs", "no-dup"),
    ("cbs", "full-dup"),
    ("brr", "no-dup"),
    ("brr", "full-dup"),
)


@dataclass
class SweepPoint:
    """One simulated configuration."""

    kind: str
    duplication: str
    interval: int
    with_payload: bool
    cycles: int
    overhead: float
    cycles_per_site: float


@dataclass
class MicrobenchSweep:
    """All Figure 13/14 series for one text/size."""

    n_chars: int
    sites: int
    base_cycles: int
    base_branch_accuracy: float
    base_l1i_hit_rate: float
    base_l1d_hit_rate: float
    full_instr_overhead: float
    full_instr_cycles_per_site: float
    points: List[SweepPoint] = field(default_factory=list)
    #: Present only when a non-exhaustive plan left interval points
    #: unrun; exhaustive sweeps keep their historical shape.
    sampling: Optional[SamplingSummary] = None

    def series(self, kind: str, duplication: str,
               with_payload: bool) -> List[SweepPoint]:
        """One Figure 13 curve, ordered by interval."""
        return sorted(
            (p for p in self.points
             if (p.kind, p.duplication, p.with_payload)
             == (kind, duplication, with_payload)),
            key=lambda p: p.interval,
        )

    def intervals_present(self) -> List[int]:
        """Every interval with at least one sampled point, ascending."""
        return sorted({p.interval for p in self.points})

    def to_dict(self) -> Dict[str, Any]:
        """Plain-scalar form for ``--json`` output.

        The ``sampling`` block appears only for sampled sweeps, so
        exhaustive JSON output is unchanged from the pre-sampling
        pipeline.
        """
        from dataclasses import asdict

        data = asdict(self)
        data.pop("sampling", None)
        if self.sampling is not None:
            data["sampling"] = self.sampling.to_dict()
        return data


def _run(bench: Microbench, config: Optional[TimingConfig],
         lfsr_seed: int = 0) -> WindowResult:
    unit = None
    if bench.variant.startswith("brr"):
        from ..core.lfsr import Lfsr

        seed = (0xACE1 + lfsr_seed * 7919) & 0xFFFFF or 1
        unit = BranchOnRandomUnit(Lfsr(20, seed=seed))
    return time_window(
        bench.program,
        begin=(WARM_MARKER, 1),
        end=(END_MARKER, 1),
        setup=bench.load_text,
        brr_unit=unit,
        config=config,
    )


def microbench_window_spec(
    n_chars: int,
    variant: str,
    seed: int,
    kind: Optional[str] = None,
    interval: Optional[int] = None,
    include_payload: bool = True,
    lfsr_seed: int = 0,
    config: Optional[TimingConfig] = None,
) -> WindowSpec:
    """Declarative form of one microbenchmark timing window.

    The un-sampled variants (``none``/``full``) canonicalise the
    sampling parameters away so their cache entries are shared by
    every sweep that reuses the same baseline.
    """
    sampled = variant in ("no-dup", "full-dup")
    return WindowSpec.make(
        "microbench",
        n_chars=n_chars,
        variant=variant,
        seed=seed,
        kind=kind if sampled else None,
        interval=interval if sampled else None,
        include_payload=include_payload if sampled else None,
        lfsr_seed=lfsr_seed if sampled else 0,
        config=None if config is None else config.to_dict(),
    )


def _curve(kind: str, duplication: str, with_payload: bool) -> str:
    return f"{kind}/{duplication}/{'inst' if with_payload else 'plain'}"


def microbench_population(
    n_chars: int = 4000,
    intervals: Sequence[int] = INTERVALS,
    seed: int = 1,
    config: Optional[TimingConfig] = None,
    include_payload_variants: bool = True,
) -> WindowPopulation:
    """The sweep's full window space.

    The two baseline cells are *mandatory* — every sampling plan runs
    them, because every other point is normalised against the
    un-instrumented baseline.  Interval points form one cell each,
    stratified by curve, in the exact enumeration order of the
    pre-sampling pipeline.
    """
    payload_options = (True, False) if include_payload_variants else (False,)
    cells = [
        Cell(
            id="baseline/none",
            stratum="baseline",
            specs=(microbench_window_spec(n_chars, "none", seed,
                                          config=config),),
            mandatory=True,
        ),
        Cell(
            id="baseline/full",
            stratum="baseline",
            specs=(microbench_window_spec(n_chars, "full", seed,
                                          config=config),),
            mandatory=True,
        ),
    ]
    cells.extend(
        Cell(
            id=f"{_curve(kind, duplication, with_payload)}/{interval}",
            stratum=_curve(kind, duplication, with_payload),
            specs=(microbench_window_spec(
                n_chars, duplication, seed, kind=kind, interval=interval,
                include_payload=with_payload, lfsr_seed=interval,
                config=config),),
            tags=(("kind", kind), ("duplication", duplication),
                  ("with_payload", with_payload), ("interval", interval)),
        )
        for kind, duplication in COMBOS
        for with_payload in payload_options
        for interval in intervals
    )
    return WindowPopulation("microbench", tuple(cells))


def microbench_sweep(
    n_chars: int = 4000,
    intervals: Sequence[int] = INTERVALS,
    seed: int = 1,
    config: Optional[TimingConfig] = None,
    include_payload_variants: bool = True,
    engine: Optional[ExperimentEngine] = None,
    plan: Optional[SamplingPlan] = None,
) -> MicrobenchSweep:
    """Run the whole Figure 13/14 sweep at one scale.

    Every point — the baseline, the full-instrumentation reference and
    each (kind, duplication, payload, interval) combination — is an
    independent engine window; the sweep object is a pure reduction of
    the returned payloads.  A non-exhaustive ``plan`` runs the two
    mandatory baselines plus a stratified per-curve subset of interval
    points and attaches the estimator summary.
    """
    population = microbench_population(
        n_chars, intervals, seed, config, include_payload_variants)
    run = run_population(population, plan=plan, engine=engine)

    base_payload = run.cell_payloads("baseline/none")[0]
    full_payload = run.cell_payloads("baseline/full")[0]
    if is_failure(base_payload) or is_failure(full_payload):
        # Every other point is normalised against the baseline, so a
        # skipped baseline/full window leaves nothing to reduce.
        raise RuntimeError(
            "microbench baseline window was skipped after repeated "
            "failures; re-run with failure_policy='retry' or 'raise'")
    base = WindowResult.from_dict(base_payload["result"])
    sites = base_payload["sites"]
    full = WindowResult.from_dict(full_payload["result"])

    sweep = MicrobenchSweep(
        n_chars=n_chars,
        sites=sites,
        base_cycles=base.cycles,
        base_branch_accuracy=base.stats.branch_accuracy,
        base_l1i_hit_rate=1.0 - (base.stats.icache_misses
                                 / max(1, base.instructions)),
        base_l1d_hit_rate=1.0 - (base.stats.dcache_misses
                                 / max(1, base.stats.loads + base.stats.stores)),
        full_instr_overhead=overhead_percent(base.cycles, full.cycles),
        full_instr_cycles_per_site=cycles_per_site(base.cycles, full.cycles,
                                                   sites),
    )
    for cell in run.cells:
        if cell.stratum == "baseline":
            continue
        payload = run.cell_payloads(cell.id)[0]
        kind = cell.tag("kind")
        duplication = cell.tag("duplication")
        with_payload = cell.tag("with_payload")
        interval = cell.tag("interval")
        if is_failure(payload):
            # A skipped sweep point degrades to a NaN cell instead of
            # aborting the whole figure (failure_policy="skip").
            sweep.points.append(SweepPoint(
                kind=kind, duplication=duplication, interval=interval,
                with_payload=with_payload, cycles=-1,
                overhead=float("nan"), cycles_per_site=float("nan")))
            continue
        cycles = payload["cycles"]
        sweep.points.append(SweepPoint(
            kind=kind,
            duplication=duplication,
            interval=interval,
            with_payload=with_payload,
            cycles=cycles,
            overhead=overhead_percent(base.cycles, cycles),
            cycles_per_site=cycles_per_site(base.cycles, cycles, sites),
        ))

    if not run.complete:
        payload_options = ((True, False) if include_payload_variants
                           else (False,))
        estimates = {}
        for kind, duplication in COMBOS:
            for with_payload in payload_options:
                overheads = [
                    p.overhead
                    for p in sweep.series(kind, duplication, with_payload)
                    if not math.isnan(p.overhead)
                ]
                if overheads:
                    name = _curve(kind, duplication, with_payload)
                    estimates[f"{name} overhead %"] = estimate_mean(
                        overheads, population=len(intervals),
                        confidence=run.plan.confidence)
        sweep.sampling = SamplingSummary(
            plan=run.plan,
            windows_population=run.windows_population,
            windows_run=run.windows_run,
            cells_population=run.cells_population,
            cells_run=run.cells_run,
            estimates=estimates,
        )
    return sweep


def sampling_payoff_interval(sweep: MicrobenchSweep, kind: str,
                             duplication: str) -> Optional[int]:
    """The smallest interval at which sampled instrumentation costs
    less than unsampled full instrumentation.

    This is Figure 2's narrative made operational: sampling pays off
    once the (fixed + variable) framework cost drops below the full
    instrumentation cost it replaces.  Returns ``None`` if sampling
    never wins in the sweep's range (which is counter-based sampling's
    problem at high fixed cost).
    """
    for point in sweep.series(kind, duplication, with_payload=True):
        if point.overhead < sweep.full_instr_overhead:
            return point.interval
    return None


def _table_cell(series: List[SweepPoint], interval: int,
                fmt: str, width: int) -> str:
    for point in series:
        if point.interval == interval:
            return format(getattr(point, fmt), f"{width}.2f") \
                if fmt == "overhead" \
                else format(point.cycles_per_site, f"{width}.3f")
    return format("-", f">{width}")


def format_figure13(sweep: MicrobenchSweep) -> str:
    """Figure 13's eight curves as a fixed-width table.

    Exhaustive sweeps render the historical full-interval table;
    sampled sweeps show only the intervals that ran (missing cells as
    ``-``) plus the estimator footer.
    """
    if sweep.sampling is None:
        columns: Sequence[int] = INTERVALS
    else:
        columns = sweep.intervals_present()
    lines = [
        f"Figure 13: % overhead vs. interval "
        f"({sweep.n_chars} chars, {sweep.sites} sites, "
        f"baseline {sweep.base_cycles} cycles)",
        "curve" + " " * 21 + " ".join(f"{iv:>7}" for iv in columns),
    ]
    for kind, dup in COMBOS:
        for payload in (True, False):
            series = sweep.series(kind, dup, payload)
            if not series:
                continue
            label = f"{kind} {'+inst' if payload else '     '} ({dup})"
            if sweep.sampling is None:
                lines.append(
                    f"{label:<26}" + " ".join(f"{p.overhead:7.2f}" for p in series)
                )
            else:
                lines.append(
                    f"{label:<26}"
                    + " ".join(_table_cell(series, iv, "overhead", 7)
                               for iv in columns)
                )
    if sweep.sampling is not None:
        lines.extend(sweep.sampling.describe())
    return "\n".join(lines)


def format_figure14(sweep: MicrobenchSweep) -> str:
    """Figure 14: cycles per site (Full-Duplication curves)."""
    if sweep.sampling is None:
        columns: Sequence[int] = INTERVALS
    else:
        columns = sweep.intervals_present()
    lines = [
        "Figure 14: average cycles per sampling site (Full-Duplication)",
        f"(full-instrumentation reference: "
        f"{sweep.full_instr_cycles_per_site:.2f} cycles/site)",
        "curve" + " " * 16 + " ".join(f"{iv:>7}" for iv in columns),
    ]
    for kind in ("cbs", "brr"):
        for payload in (True, False):
            series = sweep.series(kind, "full-dup", payload)
            if not series:
                continue
            label = f"{kind}{' + inst' if payload else '       '}"
            if sweep.sampling is None:
                lines.append(
                    f"{label:<21}"
                    + " ".join(f"{p.cycles_per_site:7.3f}" for p in series)
                )
            else:
                lines.append(
                    f"{label:<21}"
                    + " ".join(_table_cell(series, iv, "cycles_per_site", 7)
                               for iv in columns)
                )
    if sweep.sampling is not None:
        lines.extend(sweep.sampling.describe())
    return "\n".join(lines)
