"""The chaos harness: deterministic fault injection, end to end.

:class:`FaultyBackend` must be a pure function of its seed — a chaos
run that can't replay can't be debugged — and every fault mode must
land *below* the integrity layer so served responses stay
byte-identical.  :func:`run_chaos_serve` is the executable proof.
"""

import pytest

from repro.serve import FAULT_MODES, FaultyBackend, format_chaos, run_chaos_serve
from repro.serve.chaos import _request_docs
from repro.store import FilesystemBackend

SCALE = 150  # characters: keeps the end-to-end run fast


def _entry(root, payload=b"x" * 64):
    path = root / "entry.bin"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(payload)
    return path


def _drain_sequence(backend, op, name, calls):
    """The injected-mode sequence for ``calls`` draws of (op, name)."""
    return [backend._draw(op, name) for _ in range(calls)]


class TestFaultyBackendDeterminism:
    def test_same_seed_replays_the_same_faults(self, tmp_path):
        sequences = []
        for _ in range(2):
            backend = FaultyBackend(FilesystemBackend(tmp_path / "shared"),
                                    seed=0, rate=0.5, sleep=lambda s: None)
            sequences.append(_drain_sequence(backend, "fetch", "entry", 32))
        assert sequences[0] == sequences[1]
        assert any(mode is not None for mode in sequences[0])

    def test_different_seeds_differ(self, tmp_path):
        inner = FilesystemBackend(tmp_path / "shared")
        a = _drain_sequence(FaultyBackend(inner, seed=0, rate=0.5),
                            "fetch", "entry", 64)
        b = _drain_sequence(FaultyBackend(inner, seed=1, rate=0.5),
                            "fetch", "entry", 64)
        assert a != b

    def test_fault_identity_includes_op_and_name(self, tmp_path):
        backend = FaultyBackend(FilesystemBackend(tmp_path / "shared"),
                                seed=0, rate=0.5)
        fetches = _drain_sequence(backend, "fetch", "entry", 32)
        pushes = _drain_sequence(backend, "push", "entry", 32)
        others = _drain_sequence(backend, "fetch", "other", 32)
        assert fetches != pushes
        assert fetches != others

    def test_rate_zero_never_faults(self, tmp_path):
        backend = FaultyBackend(FilesystemBackend(tmp_path / "shared"),
                                seed=0, rate=0.0)
        assert _drain_sequence(backend, "fetch", "entry", 64) == [None] * 64

    def test_heal_stops_injection(self, tmp_path):
        backend = FaultyBackend(FilesystemBackend(tmp_path / "shared"),
                                seed=0, rate=0.9, sleep=lambda s: None)
        assert any(_drain_sequence(backend, "fetch", "entry", 8))
        backend.heal()
        assert _drain_sequence(backend, "fetch", "entry", 8) == [None] * 8

    def test_validation(self, tmp_path):
        inner = FilesystemBackend(tmp_path / "shared")
        with pytest.raises(ValueError, match="rate"):
            FaultyBackend(inner, rate=1.0)
        with pytest.raises(ValueError, match="unknown fault modes"):
            FaultyBackend(inner, modes=("slow", "segfault"))


class TestFaultyBackendModes:
    def _faulty(self, tmp_path, modes, rate=0.999999, **kwargs):
        # rate just below 1 (validated upper bound) ≈ every call faults.
        slept = []
        backend = FaultyBackend(
            FilesystemBackend(tmp_path / "shared"), seed=0, rate=rate,
            modes=modes, sleep=slept.append, **kwargs)
        return backend, slept

    def test_error_mode_raises(self, tmp_path):
        backend, _slept = self._faulty(tmp_path, ("error",))
        with pytest.raises(OSError, match="injected backend error"):
            backend.fetch("entry", tmp_path / "dest")
        with pytest.raises(OSError, match="injected backend error"):
            backend.push("entry", _entry(tmp_path))
        assert backend.injected["error"] == 2

    def test_hang_mode_sleeps_then_raises(self, tmp_path):
        backend, slept = self._faulty(tmp_path, ("hang",), hang_seconds=9.0)
        with pytest.raises(OSError, match="injected backend hang"):
            backend.fetch("entry", tmp_path / "dest")
        assert slept == [9.0]

    def test_slow_mode_sleeps_then_succeeds(self, tmp_path):
        backend, slept = self._faulty(tmp_path, ("slow",), slow_seconds=0.7)
        src = _entry(tmp_path)
        assert backend.push("entry", src) is True
        assert slept == [0.7]
        assert backend.injected["slow"] == 1

    def test_torn_push_publishes_truncated_bytes(self, tmp_path):
        backend, _slept = self._faulty(tmp_path, ("torn",))
        src = _entry(tmp_path, payload=b"y" * 100)
        assert backend.push("entry", src) is True
        # The source file is untouched; the published copy is torn.
        assert src.read_bytes() == b"y" * 100
        healthy = FilesystemBackend(tmp_path / "shared")
        assert healthy.fetch("entry", tmp_path / "fetched")
        assert (tmp_path / "fetched").stat().st_size == 50

    def test_torn_fetch_truncates_the_local_copy_only(self, tmp_path):
        healthy = FilesystemBackend(tmp_path / "shared")
        healthy.push("entry", _entry(tmp_path, payload=b"z" * 100))
        backend, _slept = self._faulty(tmp_path, ("torn",))
        assert backend.fetch("entry", tmp_path / "dest") is True
        assert (tmp_path / "dest").stat().st_size == 50
        # The backend's copy is intact — only the delivery was torn.
        assert healthy.fetch("entry", tmp_path / "again")
        assert (tmp_path / "again").stat().st_size == 100

    def test_stats_carry_the_fault_ledger(self, tmp_path):
        backend, _slept = self._faulty(tmp_path, ("error",))
        with pytest.raises(OSError):
            backend.fetch("entry", tmp_path / "dest")
        stats = backend.stats()
        assert stats["faults"]["error"] == 1
        assert stats["backend"].startswith("faulty(fs:")

    def test_counters_delegate_to_inner(self, tmp_path):
        inner = FilesystemBackend(tmp_path / "shared")
        backend = FaultyBackend(inner, rate=0.0)
        assert backend.counters is inner.counters


class TestRequestSweep:
    def test_seeded_commands_vary_the_seed(self):
        docs = _request_docs("figure13", {"scale": 100}, 3)
        assert [doc["seed"] for doc in docs] == [0, 1, 2]
        assert all(doc["scale"] == 100 for doc in docs)

    def test_seed_offset_respects_the_base(self):
        docs = _request_docs("figure13", {"seed": 7}, 2)
        assert [doc["seed"] for doc in docs] == [7, 8]

    def test_unseeded_commands_repeat(self):
        docs = _request_docs("cost", None, 3)
        assert docs == [{}, {}, {}]

    def test_unknown_command_rejected(self):
        with pytest.raises(ValueError, match="unknown command"):
            _request_docs("rm_rf", None, 1)


class TestEndToEnd:
    def test_chaos_run_is_byte_identical_and_recovers(self, tmp_path):
        """The acceptance criterion: FaultyBackend(seed=0, rate=0.2)
        under all modes, byte-identical to the clean pass, breaker
        opens and recovers, drain sheds, warm restart is all hits."""
        report = run_chaos_serve(
            command="figure13", params={"scale": SCALE},
            requests=3, seed=0, rate=0.2, modes=FAULT_MODES,
            hang_seconds=2.0, workdir=tmp_path)
        assert report.divergences == []
        assert sum(report.faults.values()) > 0
        assert report.breaker_opened
        assert report.breaker_recovered
        assert report.deadline["ok"]
        assert report.drain["ok"]
        assert report.drain["post_drain_status"] == 503
        assert report.shed >= 1
        assert report.warm == {"hits": report.warm["hits"], "misses": 0,
                               "byte_identical": True, "ok": True}
        assert report.warm["hits"] > 0
        assert not report.failed
        assert len(report.digests) == 3
        text = format_chaos(report)
        assert "byte-identical" in text
        assert text.endswith("verdict: PASS")

    def test_report_serialises(self, tmp_path):
        report = run_chaos_serve(
            command="figure13", params={"scale": SCALE},
            requests=2, seed=1, rate=0.3, modes=("error", "torn"),
            workdir=tmp_path)
        data = report.to_dict()
        assert data["failed"] == report.failed
        assert data["modes"] == ["error", "torn"]
        assert set(data) >= {"divergences", "digests", "faults", "breaker",
                             "deadline", "drain", "warm", "shed"}
