"""Batched fast-path timing kernel over columnar traces.

:class:`~repro.timing.pipeline.TimingSimulator` is the golden
reference: one ``step()`` call per retired instruction, dispatching
through dataclass properties, small helper objects and the
``_Bandwidth`` maps.  That shape is ideal for auditing against the
paper's Section 5.1 prose, but after PR 2 moved sweeps to
record-once/replay-many it is also where nearly all scorecard wall
time goes.  This module is the optimised replay path (rr-style: the
*replayed* execution is the common case, so it gets the fast
implementation):

* the trace is decoded once into struct-of-arrays columns
  (:meth:`~repro.sim.trace_io.RecordedTrace.columns`) — no per-record
  ``TraceRecord`` objects;
* branch-class dispatch, source/dest registers and latencies are
  precomputed per static instruction word, so the hot loop indexes
  flat tables instead of calling ``Instruction`` properties;
* the tournament predictor's gshare/bimodal/chooser tables are flat
  ``bytearray``\\ s of 2-bit counters, the BTB is a pair of lists, and
  the cache hierarchy's LRU sets are plain insertion-ordered dicts;
* the decode and commit ``_Bandwidth`` maps collapse to ring-buffer
  slot allocators: their requests are frontier-monotonic (always at
  or past the last allocated cycle), so a ``(cycle, slots_used)``
  pair — a one-deep ring — reproduces the map bit for bit.  The
  *issue* port is the one stage whose requests can fall behind the
  frontier (a dependence-free instruction may issue long before a
  load-miss chain completes), so it keeps the golden pruned-map
  allocator, inlined with locals-bound state: matching the golden
  path's prune semantics exactly is what keeps the stats
  byte-identical;
* all simulator state lives in local variables for the duration of
  the loop.

The contract is *bit-exact equivalence*: every
:class:`~repro.timing.pipeline.TimingStats` produced here must equal
the lock-step golden path byte for byte
(``tests/test_fastpath_golden.py`` pins all 15 Figure-12 cells and 4
Figure-13 combos; ``tests/test_fastpath_fuzz.py`` differentially
fuzzes random programs over every branch class).  Anything the kernel
cannot reproduce exactly (currently: trap-emulated records, or an
issue-port request falling behind the retained bandwidth window)
raises :class:`FastPathUnsupported` and the caller falls back to the
golden loop.

``REPRO_FAST=0`` opts out globally (threaded through
:class:`~repro.engine.core.ExperimentEngine` and its pool workers);
see ``docs/performance.md``.
"""

from __future__ import annotations

import contextlib
import os
from collections import deque
from typing import List, Optional, Tuple

from ..isa.instructions import Instruction, Op
from ..sim.trace_io import RecordedTrace
from .config import TimingConfig
from .pipeline import TimingStats, _Bandwidth


class FastPathUnsupported(Exception):
    """The fast path cannot reproduce this replay bit-exactly; the
    caller must fall back to the lock-step golden loop."""


# ----------------------------------------------------------------------
# REPRO_FAST knob.  Three-valued since the v2 kernel landed:
#
#   ``vector`` — numpy span-replay kernel (:mod:`.fastpath_vec`), the
#       default; falls back to ``loop`` for anything it cannot
#       reproduce bit-exactly (and that in turn to the golden model);
#   ``loop``   — the per-record columnar kernel in this module (the
#       pre-v2 fast path);
#   ``off``    — golden lock-step model only.
#
# The historical boolean spellings keep working: ``0``/``false``/``no``
# mean ``off``, ``1``/``true``/``yes`` mean the default fast kernel.

FAST_MODES = ("vector", "loop", "off")

_override: Optional[str] = None


def normalize_fast_mode(value) -> Optional[str]:
    """Map a knob value (bool, str or ``None``) onto a mode name."""
    if value is None:
        return None
    if value is True:
        return "vector"
    if value is False:
        return "off"
    raw = str(value).strip().lower()
    if raw in ("0", "false", "no", "off"):
        return "off"
    if raw in ("1", "true", "yes", "on", "fast", "vector", ""):
        return "vector"
    if raw == "loop":
        return "loop"
    raise ValueError(
        f"bad fast-path mode {value!r} (expected one of {FAST_MODES})")


def fastpath_mode() -> str:
    """The active kernel selection: ``REPRO_FAST`` (default
    ``vector``), unless a caller installed an explicit override (the
    engine does, so pool workers follow the parent process's setting
    rather than re-reading the environment)."""
    if _override is not None:
        return _override
    return normalize_fast_mode(os.environ.get("REPRO_FAST", "vector"))


def fastpath_enabled() -> bool:
    """Whether any fast kernel is selected (historical boolean view)."""
    return fastpath_mode() != "off"


def set_fastpath_override(value) -> Optional[str]:
    """Force a fast-path mode (``None`` restores the env default);
    accepts mode names or historical booleans; returns the previous
    override."""
    global _override
    previous = _override
    _override = normalize_fast_mode(value)
    return previous


@contextlib.contextmanager
def fastpath_override(value):
    previous = set_fastpath_override(value)
    try:
        yield
    finally:
        set_fastpath_override(previous)


# Test seam for the validation watchdog: when set, the tap transforms
# the kernel's result before it is returned, simulating a buggy fast
# path without touching the kernel itself.  Production leaves it None.
_stats_tap = None


@contextlib.contextmanager
def stats_tap(tap):
    """Install a ``TimingStats -> TimingStats`` transform on the fast
    path's output for the duration of the block (tests only)."""
    global _stats_tap
    previous = _stats_tap
    _stats_tap = tap
    try:
        yield
    finally:
        _stats_tap = previous


# ----------------------------------------------------------------------
# Per-static-word metadata.

#: Branch-class codes used by the kernel's dispatch.
_K_OTHER, _K_COND, _K_BRR, _K_BRRA, _K_JMP, _K_JAL, _K_JR, _K_LOAD, \
    _K_STORE = range(9)


def _word_tables(instrs: List[Instruction]) -> Tuple[bytearray, list, list,
                                                     list, list, bytearray]:
    """Flat per-word-id lookup tables: branch class, up to two source
    registers (``-1`` = absent), destination register (``-1`` = none),
    execution latency and the is-return flag."""
    n = len(instrs)
    kclass = bytearray(n)
    src1 = [-1] * n
    src2 = [-1] * n
    dest = [-1] * n
    lat = [1] * n
    is_ret = bytearray(n)
    for i, instr in enumerate(instrs):
        op = instr.op
        if op is Op.BRR:
            kclass[i] = _K_BRR
        elif op is Op.BRRA:
            kclass[i] = _K_BRRA
        elif instr.is_cond_branch:
            kclass[i] = _K_COND
        elif op is Op.JMP:
            kclass[i] = _K_JMP
        elif op is Op.JAL:
            kclass[i] = _K_JAL
        elif op is Op.JR:
            kclass[i] = _K_JR
            is_ret[i] = 1 if instr.is_return else 0
        elif instr.is_load:
            kclass[i] = _K_LOAD
        elif instr.is_store:
            kclass[i] = _K_STORE
        sources = instr.sources()
        if sources:
            src1[i] = sources[0]
            if len(sources) > 1:
                src2[i] = sources[1]
        d = instr.dest()
        if d is not None:
            dest[i] = d
        lat[i] = instr.latency
    return kclass, src1, src2, dest, lat, is_ret


# ----------------------------------------------------------------------
# The kernel.

def run_fastpath(
    trace: RecordedTrace,
    i_skip: int,
    i_begin: int,
    i_end: int,
    config: Optional[TimingConfig] = None,
    program=None,
    prewarm_code: bool = True,
) -> TimingStats:
    """Replay records ``i_skip+1 .. i_end`` of ``trace`` and return the
    measured-window stats (records after ``i_begin`` — the same
    snapshot-and-subtract schedule as the golden
    :func:`~repro.timing.runner.replay_window` loop).

    Raises :class:`FastPathUnsupported` for anything the kernel cannot
    reproduce bit-exactly.
    """
    cfg = config or TimingConfig()
    cols = trace.columns()
    if cols.has_trapped:
        # Golden path raises on trap-emulated records; let it.
        raise FastPathUnsupported("trace contains trap-emulated records")

    # ----- columns ----------------------------------------------------
    pcs = cols.pc
    wids = cols.word_id
    npcs = cols.next_pc
    tks = cols.taken
    mems = cols.mem_addr
    kclass, src1, src2, dest, lat_tab, is_ret = _word_tables(cols.instrs)

    # ----- config locals ----------------------------------------------
    fetch_width = cfg.fetch_width
    decode_width = cfg.decode_width
    issue_width = cfg.issue_width
    commit_width = cfg.commit_width
    rob_entries = cfg.rob_entries
    preg_budget = max(1, cfg.phys_regs - 16)
    frontend_depth = cfg.frontend_depth
    backend_penalty = cfg.backend_penalty
    line_bytes = cfg.line_bytes
    l1_lat = cfg.l1_latency
    l2_lat = cfg.l2_latency
    mem_lat = cfg.memory_latency
    brr_front = cfg.brr_resolve_at_decode
    brr_predicted = cfg.brr_uses_predictor
    brr_at_decode = cfg.brr_commits_at_decode
    brr_shared = cfg.brr_shared_lfsr
    prune_threshold = _Bandwidth.PRUNE_THRESHOLD
    prune_window = _Bandwidth.PRUNE_WINDOW

    # ----- predictor / BTB / RAS tables -------------------------------
    h_mask = (1 << cfg.gshare_history_bits) - 1
    g_tab = bytearray(b"\x01" * (1 << cfg.gshare_history_bits))
    g_mask = h_mask
    b_tab = bytearray(b"\x01" * cfg.bimodal_entries)
    b_mask = cfg.bimodal_entries - 1
    ch_tab = bytearray(b"\x01" * cfg.chooser_entries)
    ch_mask = cfg.chooser_entries - 1
    history = 0
    btb_mask = cfg.btb_entries - 1
    btb_tags = [-1] * cfg.btb_entries
    btb_targets = [0] * cfg.btb_entries
    ras_entries = cfg.ras_entries
    ras_stack = [0] * ras_entries
    ras_top = 0
    ras_depth = 0

    # ----- cache hierarchy (insertion-ordered dicts == true LRU) ------
    i_nsets = cfg.l1i_size // (cfg.l1i_assoc * line_bytes)
    d_nsets = cfg.l1d_size // (cfg.l1d_assoc * line_bytes)
    l2_nsets = cfg.l2_size // (cfg.l2_assoc * line_bytes)
    i_assoc, d_assoc, l2_assoc = cfg.l1i_assoc, cfg.l1d_assoc, cfg.l2_assoc
    i_sets = [dict() for _ in range(i_nsets)]
    d_sets = [dict() for _ in range(d_nsets)]
    l2_sets = [dict() for _ in range(l2_nsets)]
    i_miss = d_miss = l2_miss = 0

    if prewarm_code:
        if program is None:
            raise ValueError("prewarm_code requires the program image")
        addr = program.base
        end_addr = program.end
        while addr < end_addr:
            line = addr // line_bytes
            s2 = l2_sets[line % l2_nsets]
            if line in s2:
                del s2[line]
                s2[line] = True
            else:
                l2_miss += 1
                s2[line] = True
                if len(s2) > l2_assoc:
                    del s2[next(iter(s2))]
            addr += line_bytes

    # ----- pipeline state ---------------------------------------------
    fetch_cycle = 0
    fetch_slots = fetch_width
    last_line = -1
    # Decode/commit slot allocators: one-deep rings (frontier cycle +
    # slots used there); requests are provably >= the frontier.
    dcyc = -1
    dused = decode_width
    ccyc = -1
    cused = commit_width
    last_decode = 0
    last_commit = 0
    # Issue keeps the golden pruned-map allocator (see module docs).
    issue_counts = {}
    final_commit = 0
    reg_ready = [0] * 16
    rob = deque()
    pregs = deque()
    rob_append, rob_popleft = rob.append, rob.popleft
    pregs_append, pregs_popleft = pregs.append, pregs.popleft
    next_brr_slot = 0

    # ----- counters ---------------------------------------------------
    instructions = 0
    cond_branches = cond_mispredicts = 0
    brr_resolved = brr_taken = 0
    frontend_redirects = backend_redirects = 0
    brr_packet_splits = fetch_breaks = rob_stall_cycles = 0
    loads = stores = 0

    baseline = None  # counters snapshot taken after stepping i_begin

    index = i_skip + 1
    while index <= i_end:
        pc = pcs[index]
        wid = wids[index]
        next_pc = npcs[index]
        tk = tks[index]
        kc = kclass[wid]

        # ---------------- fetch ----------------
        line = pc // line_bytes
        if line != last_line:
            s1 = i_sets[line % i_nsets]
            if line in s1:
                del s1[line]
                s1[line] = True
            else:
                i_miss += 1
                s2 = l2_sets[line % l2_nsets]
                if line in s2:
                    del s2[line]
                    s2[line] = True
                    fill = l2_lat
                else:
                    l2_miss += 1
                    s2[line] = True
                    if len(s2) > l2_assoc:
                        del s2[next(iter(s2))]
                    fill = l2_lat + mem_lat
                s1[line] = True
                if len(s1) > i_assoc:
                    del s1[next(iter(s1))]
                latency = l1_lat + fill
                if latency > l1_lat:
                    fetch_cycle += latency - l1_lat
                    fetch_slots = fetch_width
            last_line = line
        fetch = fetch_cycle
        fetch_slots -= 1
        if fetch_slots == 0:
            fetch_cycle = fetch + 1
            fetch_slots = fetch_width

        # ---------------- predict ----------------
        # mis: 0 = correct, 1 = front (resolved at decode), 2 = back.
        mis = 0
        ptaken = False
        if kc != _K_OTHER:
            if kc == _K_COND or (brr_predicted and kc == _K_BRR):
                if kc == _K_COND:
                    cond_branches += 1
                    resolve = 2
                else:
                    brr_resolved += 1
                    if tk:
                        brr_taken += 1
                    resolve = 1 if brr_front else 2
                pc2 = pc >> 2
                g_idx = (pc2 ^ history) & g_mask
                g_ctr = g_tab[g_idx]
                b_idx = pc2 & b_mask
                b_ctr = b_tab[b_idx]
                g_pred = g_ctr >= 2
                b_pred = b_tab[b_idx] >= 2
                bti = pc2 & btb_mask
                if (g_pred if ch_tab[pc2 & ch_mask] >= 2 else b_pred):
                    ptaken = btb_tags[bti] == pc
                    if ptaken:
                        correct = tk and btb_targets[bti] == next_pc
                    else:
                        correct = not tk
                else:
                    correct = not tk
                if g_pred != b_pred:
                    ci = pc2 & ch_mask
                    c_ctr = ch_tab[ci]
                    if g_pred == tk:
                        if c_ctr < 3:
                            ch_tab[ci] = c_ctr + 1
                    elif c_ctr > 0:
                        ch_tab[ci] = c_ctr - 1
                if tk:
                    if g_ctr < 3:
                        g_tab[g_idx] = g_ctr + 1
                elif g_ctr > 0:
                    g_tab[g_idx] = g_ctr - 1
                history = ((history << 1) | tk) & h_mask
                if tk:
                    if b_ctr < 3:
                        b_tab[b_idx] = b_ctr + 1
                elif b_ctr > 0:
                    b_tab[b_idx] = b_ctr - 1
                if tk:
                    btb_tags[bti] = pc
                    btb_targets[bti] = next_pc
                if not correct:
                    mis = resolve
                    if kc == _K_COND:
                        cond_mispredicts += 1
            elif kc == _K_BRR or kc == _K_BRRA:
                brr_resolved += 1
                if tk:
                    brr_taken += 1
                if brr_predicted:
                    # Only BRRA reaches here (predicted BRR handled
                    # above); it predicts through the BTB alone.
                    bti = (pc >> 2) & btb_mask
                    ptaken = btb_tags[bti] == pc
                    if not ptaken:
                        mis = 1 if brr_front else 2
                    btb_tags[bti] = pc
                    btb_targets[bti] = next_pc
                elif tk:
                    mis = 1 if brr_front else 2
            elif kc == _K_JMP or kc == _K_JAL:
                bti = (pc >> 2) & btb_mask
                ptaken = btb_tags[bti] == pc and btb_targets[bti] == next_pc
                if not ptaken:
                    mis = 1
                btb_tags[bti] = pc
                btb_targets[bti] = next_pc
                if kc == _K_JAL:
                    ras_top = (ras_top + 1) % ras_entries
                    ras_stack[ras_top] = pc + 4
                    if ras_depth < ras_entries:
                        ras_depth += 1
            elif kc == _K_JR:
                if is_ret[wid]:
                    if ras_depth == 0:
                        matched = False
                    else:
                        matched = ras_stack[ras_top] == next_pc
                        ras_top = (ras_top - 1) % ras_entries
                        ras_depth -= 1
                else:
                    bti = (pc >> 2) & btb_mask
                    matched = (btb_tags[bti] == pc
                               and btb_targets[bti] == next_pc)
                    btb_tags[bti] = pc
                    btb_targets[bti] = next_pc
                if matched:
                    ptaken = True
                else:
                    mis = 2

        # ---------------- decode / rename ----------------
        ready = fetch + frontend_depth
        if ready < last_decode:
            ready = last_decode
        if brr_shared and kc == _K_BRR:
            if ready < next_brr_slot:
                brr_packet_splits += 1
                ready = next_brr_slot
        commits_at_decode = brr_at_decode and (kc == _K_BRR or kc == _K_BRRA)
        dst = dest[wid]
        if not commits_at_decode:
            if len(rob) >= rob_entries:
                free_at = rob_popleft()
                if free_at > ready:
                    rob_stall_cycles += free_at - ready
                    ready = free_at
            if dst >= 0 and len(pregs) >= preg_budget:
                free_at = pregs_popleft()
                if free_at > ready:
                    ready = free_at
        if ready > dcyc:
            dcyc = ready
            dused = 1
        elif dused < decode_width:
            dused += 1
        else:
            dcyc += 1
            dused = 1
        decode = dcyc
        last_decode = decode
        if brr_shared and kc == _K_BRR:
            next_brr_slot = decode + 1

        # ---------------- execute & commit ----------------
        if commits_at_decode:
            complete = decode
            commit = decode
        else:
            ready_ex = decode + 1
            s = src1[wid]
            if s >= 0:
                t = reg_ready[s]
                if t > ready_ex:
                    ready_ex = t
                s = src2[wid]
                if s >= 0:
                    t = reg_ready[s]
                    if t > ready_ex:
                        ready_ex = t
            counts = issue_counts
            cycle = ready_ex
            count = counts.get(cycle, 0)
            while count >= issue_width:
                cycle += 1
                count = counts.get(cycle, 0)
            counts[cycle] = count + 1
            if len(counts) > prune_threshold:
                cutoff = cycle - prune_window
                for key in [k for k in counts if k < cutoff]:
                    del counts[key]
            issue = cycle
            if kc == _K_LOAD:
                loads += 1
                maddr = mems[index]
                line = maddr // line_bytes
                s1 = d_sets[line % d_nsets]
                if line in s1:
                    del s1[line]
                    s1[line] = True
                    dlat = l1_lat
                else:
                    d_miss += 1
                    s2 = l2_sets[line % l2_nsets]
                    if line in s2:
                        del s2[line]
                        s2[line] = True
                        fill = l2_lat
                    else:
                        l2_miss += 1
                        s2[line] = True
                        if len(s2) > l2_assoc:
                            del s2[next(iter(s2))]
                        fill = l2_lat + mem_lat
                    s1[line] = True
                    if len(s1) > d_assoc:
                        del s1[next(iter(s1))]
                    dlat = l1_lat + fill
                if dlat < 1:
                    dlat = 1
                complete = issue + dlat
            elif kc == _K_STORE:
                stores += 1
                maddr = mems[index]
                line = maddr // line_bytes
                s1 = d_sets[line % d_nsets]
                if line in s1:
                    del s1[line]
                    s1[line] = True
                else:
                    d_miss += 1
                    s2 = l2_sets[line % l2_nsets]
                    if line in s2:
                        del s2[line]
                        s2[line] = True
                    else:
                        l2_miss += 1
                        s2[line] = True
                        if len(s2) > l2_assoc:
                            del s2[next(iter(s2))]
                    s1[line] = True
                    if len(s1) > d_assoc:
                        del s1[next(iter(s1))]
                complete = issue + 1
            else:
                complete = issue + lat_tab[wid]
            if dst >= 0:
                reg_ready[dst] = complete
            rc = complete + 1
            if rc < last_commit:
                rc = last_commit
            if rc > ccyc:
                ccyc = rc
                cused = 1
            elif cused < commit_width:
                cused += 1
            else:
                ccyc += 1
                cused = 1
            commit = ccyc
            last_commit = commit
            rob_append(commit)
            if dst >= 0:
                pregs_append(commit)
        if commit > final_commit:
            final_commit = commit

        # ---------------- steer fetch ----------------
        if mis == 1:
            frontend_redirects += 1
            resume = decode + 1
            if resume > fetch_cycle:
                fetch_cycle = resume
            fetch_slots = fetch_width
            last_line = -1
        elif mis == 2:
            backend_redirects += 1
            resume = complete + 1
            minimum = fetch + backend_penalty
            if resume < minimum:
                resume = minimum
            if resume > fetch_cycle:
                fetch_cycle = resume
            fetch_slots = fetch_width
            last_line = -1
        elif ptaken:
            fetch_breaks += 1
            if fetch + 1 > fetch_cycle:
                fetch_cycle = fetch + 1
            fetch_slots = fetch_width
            last_line = -1

        instructions += 1

        if index == i_begin:
            baseline = (instructions, final_commit + 1, cond_branches,
                        cond_mispredicts, brr_resolved, brr_taken,
                        frontend_redirects, backend_redirects,
                        brr_packet_splits, fetch_breaks, rob_stall_cycles,
                        loads, stores, i_miss, d_miss, l2_miss)
        index += 1

    # ------------------------------------------------------------------
    # Mirror the golden schedule's snapshot-and-subtract arithmetic,
    # including its two edge cases: counters are only *published* into
    # the stats object by step(), so a window that never steps reports
    # zeros (not the prewarm misses), and a baseline at or before the
    # fast-forward point stays the all-zero initial snapshot.
    if i_end > i_skip:
        finals = (instructions, final_commit + 1, cond_branches,
                  cond_mispredicts, brr_resolved, brr_taken,
                  frontend_redirects, backend_redirects, brr_packet_splits,
                  fetch_breaks, rob_stall_cycles, loads, stores,
                  i_miss, d_miss, l2_miss)
    else:
        finals = (0,) * 16
    if baseline is None:
        baseline = (0,) * 16
    diff = [f - b for f, b in zip(finals, baseline)]
    stats = TimingStats(
        instructions=diff[0], cycles=diff[1], cond_branches=diff[2],
        cond_mispredicts=diff[3], brr_resolved=diff[4], brr_taken=diff[5],
        frontend_redirects=diff[6], backend_redirects=diff[7],
        brr_packet_splits=diff[8], fetch_breaks=diff[9],
        rob_stall_cycles=diff[10], loads=diff[11], stores=diff[12],
        icache_misses=diff[13], dcache_misses=diff[14], l2_misses=diff[15],
    )
    if _stats_tap is not None:
        stats = _stats_tap(stats)
    return stats
