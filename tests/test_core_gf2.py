"""Tests for GF(2) polynomial arithmetic and primitivity checking."""

import pytest
from hypothesis import given, strategies as st

from repro.core.gf2 import (
    is_irreducible,
    is_primitive,
    poly_degree,
    poly_from_exponents,
    poly_modreduce,
    poly_mulmod,
    poly_powmod,
)


class TestPolyBasics:
    def test_from_exponents(self):
        assert poly_from_exponents([4, 1, 0]) == 0b10011

    def test_from_exponents_dedups(self):
        assert poly_from_exponents([3, 3, 0]) == 0b1001

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly_from_exponents([-1])

    def test_degree(self):
        assert poly_degree(0b10011) == 4
        assert poly_degree(1) == 0
        assert poly_degree(0) == -1

    def test_modreduce_identity_below_degree(self):
        assert poly_modreduce(0b101, 0b10011) == 0b101

    def test_modreduce_x4_mod_x4_x_1(self):
        # x^4 mod (x^4 + x + 1) = x + 1
        assert poly_modreduce(0b10000, 0b10011) == 0b11

    def test_mulmod_small(self):
        # (x+1)*(x+1) = x^2 + 1 over GF(2)
        assert poly_mulmod(0b11, 0b11, 0b10011) == 0b101

    def test_mulmod_reduces(self):
        # x^2 * x^2 = x^4 = x + 1 mod (x^4+x+1)
        assert poly_mulmod(0b100, 0b100, 0b10011) == 0b11

    def test_powmod_zero_exponent(self):
        assert poly_powmod(0b10, 0, 0b10011) == 1

    def test_powmod_matches_repeated_mul(self):
        mod = 0b10011
        acc = 1
        for power in range(1, 20):
            acc = poly_mulmod(acc, 0b10, mod)
            assert poly_powmod(0b10, power, mod) == acc

    def test_powmod_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly_powmod(0b10, -1, 0b111)


class TestIrreducibility:
    def test_x4_x_1_irreducible(self):
        assert is_irreducible(0b10011)

    def test_x4_x3_x2_x_1_not_primitive_but_irreducible(self):
        # x^4+x^3+x^2+x+1 divides x^5-1, so order 5 != 15: irreducible,
        # not primitive.
        poly = 0b11111
        assert is_irreducible(poly)
        assert not is_primitive(poly)

    def test_reducible_rejected(self):
        # (x+1)^2 = x^2 + 1
        assert not is_irreducible(0b101)

    def test_even_constant_term_reducible(self):
        # x^3 + x = x(x^2+1)
        assert not is_irreducible(0b1010)

    def test_degree_zero_not_irreducible(self):
        assert not is_irreducible(1)


class TestPrimitivity:
    @pytest.mark.parametrize(
        "poly",
        [
            0b10011,  # x^4 + x + 1
            0b11001,  # x^4 + x^3 + 1 (reciprocal)
            0b100101,  # x^5 + x^2 + 1
            0b1100000000000000001,  # hmm covered below via exponents
        ][:3],
    )
    def test_known_primitive(self, poly):
        assert is_primitive(poly)

    def test_x16_poly_primitive(self):
        # x^16 + x^15 + x^13 + x^4 + 1, the canonical 16-bit tap set.
        poly = poly_from_exponents([16, 15, 13, 4, 0])
        assert is_primitive(poly)

    def test_x20_x17_primitive(self):
        poly = poly_from_exponents([20, 17, 0])
        assert is_primitive(poly)

    def test_brute_force_agreement_degree4(self):
        """Compare against exhaustive period measurement for degree 4."""
        for poly in range(0b10000, 0b100000):
            # Simulate the recurrence o[t+4] = sum of tapped history.
            if not poly & 1:
                continue  # needs constant term to be a candidate
            taps = [i for i in range(4) if (poly >> i) & 1]
            state = [1, 0, 0, 0]
            seen = {tuple(state)}
            period = 0
            for step in range(1, 17):
                new = 0
                for t in taps:
                    new ^= state[t]
                state = state[1:] + [new]
                period = step
                if tuple(state) == (1, 0, 0, 0):
                    break
            brute_maximal = period == 15 and tuple(state) == (1, 0, 0, 0)
            assert is_primitive(poly) == brute_maximal, bin(poly)


@given(st.integers(min_value=2, max_value=0xFFFF), st.integers(min_value=2, max_value=0xFFFF))
def test_mulmod_commutative(a, b):
    mod = 0b10000000000101101  # degree-16 modulus
    assert poly_mulmod(a, b, mod) == poly_mulmod(b, a, mod)


@given(st.integers(min_value=0, max_value=200), st.integers(min_value=0, max_value=200))
def test_powmod_homomorphism(e1, e2):
    mod = 0b100101  # x^5 + x^2 + 1
    lhs = poly_powmod(0b10, e1 + e2, mod)
    rhs = poly_mulmod(poly_powmod(0b10, e1, mod), poly_powmod(0b10, e2, mod), mod)
    assert lhs == rhs
