"""Glue between the functional simulator and the timing model.

Reproduces the paper's marker-based measurement methodology (Section
5.1): markers are magic instructions counted by the simulator, used to
fast-forward, warm up, and delimit the measured window so that
differently instrumented binaries are compared over the equivalent
region of execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.brr import RandomSource
from ..isa.program import Program
from ..sim.machine import Machine
from .config import TimingConfig
from .pipeline import TimingSimulator, TimingStats

#: (marker id, cumulative count) pair identifying an execution point.
MarkerPoint = Tuple[int, int]


def _prewarm_code(simulator: TimingSimulator, program: Program) -> None:
    """Install the code image in the L2, as a JIT that just wrote it
    would leave it.  Without this, the first taken sample pays DRAM
    latency for compulsory misses on its (rarely executed) out-of-line
    blocks — an artifact of short simulation windows, not of either
    sampling framework."""
    line = simulator.config.line_bytes
    addr = program.base
    while addr < program.end:
        simulator.hierarchy.l2.access(addr)
        addr += line


@dataclass
class WindowResult:
    """Timing outcome of one measured window."""

    stats: TimingStats
    total_steps: int

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    def to_dict(self) -> dict:
        """Plain-scalar form for the result cache / process boundary."""
        return {"stats": self.stats.to_dict(),
                "total_steps": self.total_steps}

    @classmethod
    def from_dict(cls, data: dict) -> "WindowResult":
        return cls(stats=TimingStats.from_dict(data["stats"]),
                   total_steps=data["total_steps"])


def time_program(
    program: Program,
    brr_unit: Optional[RandomSource] = None,
    config: Optional[TimingConfig] = None,
    memory_size: int = 1 << 20,
    max_steps: int = 20_000_000,
    setup=None,
    prewarm_code: bool = True,
) -> WindowResult:
    """Time a whole program from entry to halt.

    ``setup(machine)``, if given, runs before execution — e.g. to load
    a data buffer into simulated memory.
    """
    machine = Machine(program, memory_size=memory_size, brr_unit=brr_unit)
    if setup is not None:
        setup(machine)
    simulator = TimingSimulator(config)
    if prewarm_code:
        _prewarm_code(simulator, program)
    steps = 0
    while not machine.halted and steps < max_steps:
        simulator.step(machine.step())
        steps += 1
    if not machine.halted:
        raise RuntimeError(f"program did not halt within {max_steps} steps")
    return WindowResult(stats=simulator.stats, total_steps=steps)


def time_window(
    program: Program,
    begin: MarkerPoint,
    end: MarkerPoint,
    brr_unit: Optional[RandomSource] = None,
    config: Optional[TimingConfig] = None,
    memory_size: int = 1 << 20,
    fast_forward: Optional[MarkerPoint] = None,
    max_steps: int = 50_000_000,
    setup=None,
    prewarm_code: bool = True,
) -> WindowResult:
    """Time a marker-delimited window of a program.

    ``fast_forward`` (optional) is executed functionally only — the
    analogue of Simics pure-functional mode.  From there to ``begin``
    the timing model runs but its statistics are discarded (cache and
    predictor warm-up); the returned stats cover ``begin``..``end``.
    ``setup(machine)`` runs before execution (e.g. data loading).
    """
    machine = Machine(program, memory_size=memory_size, brr_unit=brr_unit)
    if setup is not None:
        setup(machine)
    simulator = TimingSimulator(config)
    if prewarm_code:
        _prewarm_code(simulator, program)
    steps = 0

    if fast_forward is not None:
        steps += machine.run_until_marker(
            fast_forward[0], fast_forward[1], max_steps=max_steps
        )

    def run_to(point: MarkerPoint) -> int:
        count = 0
        marker_id, target = point
        while (not machine.halted
               and machine.marker_counts.get(marker_id, 0) < target):
            simulator.step(machine.step())
            count += 1
            if steps + count > max_steps:
                raise RuntimeError(
                    f"marker {marker_id} not reached within {max_steps} steps"
                )
        if machine.marker_counts.get(marker_id, 0) < target:
            raise RuntimeError(
                f"program halted before marker {marker_id} fired "
                f"{target} time(s)"
            )
        return count

    steps += run_to(begin)
    baseline = simulator.snapshot()
    steps += run_to(end)
    return WindowResult(stats=simulator.stats - baseline, total_steps=steps)


def overhead_percent(base_cycles: int, instrumented_cycles: int) -> float:
    """Execution-time overhead of an instrumented run vs. its baseline."""
    if base_cycles <= 0:
        raise ValueError("baseline cycle count must be positive")
    return 100.0 * (instrumented_cycles - base_cycles) / base_cycles


def cycles_per_site(base_cycles: int, instrumented_cycles: int,
                    sites_encountered: int) -> float:
    """Average added cycles per dynamically encountered sampling site
    (the Figure 14 metric)."""
    if sites_encountered <= 0:
        raise ValueError("site count must be positive")
    return (instrumented_cycles - base_cycles) / sites_encountered
