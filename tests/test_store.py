"""The unified three-tier store layer (``repro.store``).

The tentpole contract: one :class:`~repro.store.tiered.TieredStore`
(memory LRU → local disk → pluggable shared backend) under both typed
views, with the pre-refactor on-disk layout preserved byte-for-byte.
Covered here:

* memory-tier LRU bounds (entries and bytes) and eviction accounting;
* tier promotion/demotion — a memory-evicted entry refills from disk,
  a local miss falls through to the shared backend, a corrupt local
  entry self-heals from the backend under ``repair``;
* concurrent-writer safety — many processes ``put()``-ing the same key
  all succeed with no torn entry and no leftover temp files;
* the configurable trace-handle LRU (``REPRO_TRACE_HANDLES`` /
  ``EngineConfig.trace_handles``) and the regression that quarantine
  still invalidates open handles at any LRU size;
* the ``repro cache --store results|traces|all`` selector.
"""

import json
import multiprocessing
import pathlib

import pytest

from repro.cli import main
from repro.engine import (
    DEFAULT_TRACE_HANDLES,
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    TraceStore,
    corrupt_file,
)
from repro.engine.spec import WindowSpec
from repro.experiments.fig13 import microbench_window_spec
from repro.store import (
    FilesystemBackend,
    MemoryTier,
    backend_spec_from_env,
    make_backend,
)


def _spec(n: int = 1) -> WindowSpec:
    return microbench_window_spec(100 * n, "none", seed=n)


def _payload(n: int = 1) -> dict:
    return {"cycles": 1000 + n, "instructions": 100 + n}


# ----------------------------------------------------------------------
# Memory tier.


class TestMemoryTier:
    def test_entry_bound_evicts_lru(self):
        tier = MemoryTier(max_entries=2, max_bytes=None)
        tier.put("a", "A", 1)
        tier.put("b", "B", 1)
        assert tier.get("a") == "A"  # refreshes a
        tier.put("c", "C", 1)       # evicts b (LRU)
        assert tier.get("b") is None
        assert tier.get("a") == "A"
        assert tier.get("c") == "C"
        assert tier.counters.evictions == 1

    def test_byte_bound_evicts_until_under(self):
        tier = MemoryTier(max_entries=None, max_bytes=100)
        tier.put("a", "A", 60)
        tier.put("b", "B", 60)  # 120 > 100: evicts a
        assert tier.get("a") is None
        assert tier.get("b") == "B"

    def test_oversized_value_is_rejected_not_thrashed(self):
        tier = MemoryTier(max_entries=None, max_bytes=10)
        tier.put("small", "s", 5)
        tier.put("huge", "H", 50)  # cannot fit: dropped, evicts nothing
        assert tier.get("huge") is None
        assert tier.get("small") == "s"

    def test_zero_bound_disables_the_tier(self):
        tier = MemoryTier(max_entries=0, max_bytes=None)
        assert not tier.enabled
        tier.put("a", "A", 1)
        assert tier.get("a") is None


# ----------------------------------------------------------------------
# Promotion / demotion across tiers.


class TestTierPromotion:
    def test_disk_read_promotes_then_serves_from_memory(self, tmp_path):
        cache = ResultCache(tmp_path, backend=None)
        spec = _spec()
        cache.put(spec, _payload())
        assert cache.get(spec) == _payload()   # disk (put doesn't promote)
        counters = cache.tier_counters()
        assert counters["disk"]["hits"] == 1
        assert counters["memory"]["hits"] == 0
        assert cache.get(spec) == _payload()   # now memory
        counters = cache.tier_counters()
        assert counters["memory"]["hits"] == 1
        assert counters["disk"]["hits"] == 1

    def test_memory_evicted_entry_refills_from_disk(self, tmp_path):
        cache = ResultCache(tmp_path, memory_entries=1, backend=None)
        spec1, spec2 = _spec(1), _spec(2)
        cache.put(spec1, _payload(1))
        cache.put(spec2, _payload(2))
        assert cache.get(spec1) == _payload(1)  # promotes spec1
        assert cache.get(spec2) == _payload(2)  # promotes spec2, evicts 1
        assert cache.tier_counters()["memory"]["evictions"] == 1
        assert cache.get(spec1) == _payload(1)  # demoted: refills from disk
        assert cache.tier_counters()["disk"]["hits"] == 3

    def test_memory_payloads_do_not_alias(self, tmp_path):
        """A reducer mutating a returned payload must not pollute the
        memory tier (it holds canonical bytes, not the object)."""
        cache = ResultCache(tmp_path, backend=None)
        spec = _spec()
        cache.put(spec, _payload())
        first = cache.get(spec)
        first = cache.get(spec)  # memory-tier read
        first["cycles"] = -1
        assert cache.get(spec) == _payload()


# ----------------------------------------------------------------------
# Shared backend tier.


class TestBackendTier:
    def test_local_miss_falls_through_to_backend(self, tmp_path):
        shared = tmp_path / "shared"
        writer = ResultCache(tmp_path / "a", backend=f"fs:{shared}")
        spec = _spec()
        writer.put(spec, _payload())
        # A second replica with an empty local store sees the entry.
        reader = ResultCache(tmp_path / "b", backend=f"fs:{shared}")
        assert reader.get(spec) == _payload()
        counters = reader.tier_counters()
        assert counters["backend"]["hits"] == 1
        # The fetch landed locally: the next read is a disk/memory hit.
        reader2 = ResultCache(tmp_path / "b", backend=None)
        assert reader2.get(spec) == _payload()

    def test_put_publishes_to_backend(self, tmp_path):
        shared = tmp_path / "shared"
        cache = ResultCache(tmp_path / "local", backend=f"fs:{shared}")
        cache.put(_spec(), _payload())
        published = list((shared / "results").rglob("*.json"))
        assert len(published) == 1

    def test_corrupt_local_entry_heals_from_backend(self, tmp_path):
        shared = tmp_path / "shared"
        cache = ResultCache(tmp_path / "local", policy="repair",
                            backend=f"fs:{shared}")
        spec = _spec()
        cache.put(spec, _payload())
        corrupt_file(cache._path(spec.cache_key), seed=1, kind="truncate")
        assert cache.get(spec) == _payload()  # healed, not a miss
        assert cache.integrity.quarantined == 1
        assert cache.integrity.repaired == 1

    def test_no_backend_means_miss(self, tmp_path):
        cache = ResultCache(tmp_path, backend=None)
        assert cache.get(_spec()) is None
        assert cache.tier_counters()["backend"] is None

    def test_backend_spec_parsing(self, tmp_path, monkeypatch):
        backend = make_backend(f"fs:{tmp_path}", "results")
        assert isinstance(backend, FilesystemBackend)
        assert backend.root == tmp_path / "results"
        # A bare path implies fs://.
        bare = make_backend(str(tmp_path), "traces")
        assert isinstance(bare, FilesystemBackend)
        assert bare.root == tmp_path / "traces"
        for disabled in ("", "0", "none", "off"):
            assert make_backend(disabled, "results") is None
        with pytest.raises(ValueError):
            make_backend("s3:bucket", "results")
        monkeypatch.setenv("REPRO_STORE_BACKEND", f"fs:{tmp_path}")
        assert backend_spec_from_env() == f"fs:{tmp_path}"
        assert EngineConfig.from_env().store_backend == f"fs:{tmp_path}"
        monkeypatch.setenv("REPRO_STORE_BACKEND", "none")
        assert backend_spec_from_env() is None

    def test_trace_store_shares_backend_root_under_namespace(self, tmp_path):
        shared = tmp_path / "shared"
        store = TraceStore(tmp_path / "a" / "traces",
                           backend=f"fs:{shared}")
        spec = microbench_window_spec(300, "full-dup", seed=1, kind="brr",
                                      interval=64, lfsr_seed=64)
        engine = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "a", backend=None),
            trace_store=store)
        engine.run([spec])
        assert list((shared / "traces").rglob("*.trace"))
        # A second replica replays the shared trace instead of
        # re-executing the functional stream.
        replica = TraceStore(tmp_path / "b" / "traces",
                             backend=f"fs:{shared}")
        engine2 = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "b", backend=None),
            trace_store=replica)
        engine2.run([spec])
        assert replica.tier_counters()["backend"]["hits"] == 1


# ----------------------------------------------------------------------
# Concurrent-writer safety.


def _concurrent_put(args):
    root, n = args
    from repro.engine import ResultCache

    cache = ResultCache(pathlib.Path(root), backend=None)
    spec = microbench_window_spec(100, "none", seed=1)
    return cache.put(spec, {"cycles": 1001, "instructions": 101})


class TestConcurrentWriters:
    def test_same_key_from_many_processes_never_tears(self, tmp_path):
        workers = 8
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(workers) as pool:
            landed = pool.map(_concurrent_put,
                              [(str(tmp_path), n) for n in range(workers)])
        assert all(landed)
        cache = ResultCache(tmp_path, policy="verify", backend=None)
        spec = microbench_window_spec(100, "none", seed=1)
        # verify policy: a torn entry would quarantine + raise.
        assert cache.get(spec) == {"cycles": 1001, "instructions": 101}
        assert not list(pathlib.Path(tmp_path).rglob(".tmp-*"))
        entries = [p for p in pathlib.Path(tmp_path).rglob("*.json")
                   if "quarantine" not in p.parts]
        assert len(entries) == 1


# ----------------------------------------------------------------------
# Configurable trace-handle LRU (satellite).


class TestTraceHandles:
    def test_default_and_explicit_bounds(self, tmp_path):
        assert TraceStore(tmp_path).handle_limit == DEFAULT_TRACE_HANDLES
        assert TraceStore(tmp_path, handles=16).handle_limit == 16

    def test_env_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_HANDLES", "9")
        assert TraceStore(tmp_path).handle_limit == 9
        assert EngineConfig.from_env().trace_handles == 9
        monkeypatch.setenv("REPRO_TRACE_HANDLES", "0")
        assert TraceStore(tmp_path).handle_limit == 1  # clamped
        monkeypatch.delenv("REPRO_TRACE_HANDLES")
        assert EngineConfig.from_env().trace_handles is None

    def test_config_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            EngineConfig(trace_handles=0)

    def test_engine_threads_handles_through(self, tmp_path):
        config = EngineConfig(jobs=1, trace_handles=7)
        engine = ExperimentEngine(
            config=config, cache=ResultCache(tmp_path, backend=None))
        assert engine.trace_store.handle_limit == 7

    @pytest.mark.parametrize("handles", [1, 2, 8])
    def test_quarantine_invalidates_handles_at_any_lru_size(
            self, tmp_path, handles):
        """Regression: eviction pressure must not let a quarantined
        trace keep being served from a stale open handle."""
        store = TraceStore(tmp_path / "traces", handles=handles,
                           backend=None)
        specs = [
            microbench_window_spec(300, "full-dup", seed=s, kind="brr",
                                   interval=64, lfsr_seed=64)
            for s in (1, 2, 3)
        ]
        engine = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "cache", backend=None),
            trace_store=store)
        engine.run(specs)
        keys = [p.stem for p in
                sorted((tmp_path / "traces").rglob("*.trace"))]
        assert len(keys) == 3
        # Warm the handle LRU, then corrupt + quarantine everything.
        for key in keys:
            store.load(key)
        for path in sorted((tmp_path / "traces").rglob("*.trace")):
            corrupt_file(path, seed=5, kind="truncate")
        report = store.scan(repair=True)
        assert report["corrupt"] == 3
        for key in keys:
            assert store.load(key) is None  # no stale handle survives


# ----------------------------------------------------------------------
# `repro cache --store` selector (satellite).


class TestCacheStoreSelector:
    def _populate(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        assert main(["figure13", "--scale", "300", "--jobs", "1",
                     "--cache-dir", cache_dir]) == 0
        capsys.readouterr()
        return cache_dir

    def _stats(self, cache_dir, capsys, *extra):
        assert main(["cache", "--json", "--cache-dir", cache_dir,
                     *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_selector_narrows_stats(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        only_results = self._stats(cache_dir, capsys,
                                   "--store", "results")
        assert only_results["store"] == "results"
        assert "results" in only_results and "traces" not in only_results
        only_traces = self._stats(cache_dir, capsys, "--store", "traces")
        assert "traces" in only_traces and "results" not in only_traces

    def test_clear_results_leaves_traces(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        before = self._stats(cache_dir, capsys)
        assert before["results"]["entries"] > 0
        assert before["traces"]["entries"] > 0
        assert main(["cache", "clear", "--json", "--store", "results",
                     "--cache-dir", cache_dir]) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert cleared["removed"] == {
            "results": before["results"]["entries"]}
        after = self._stats(cache_dir, capsys)
        assert after["results"]["entries"] == 0
        assert after["traces"]["entries"] == before["traces"]["entries"]

    def test_default_still_acts_on_both(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        before = self._stats(cache_dir, capsys)
        assert main(["cache", "clear", "--json",
                     "--cache-dir", cache_dir]) == 0
        cleared = json.loads(capsys.readouterr().out)
        assert set(cleared["removed"]) == {"results", "traces"}
        assert cleared["removed"]["traces"] == before["traces"]["entries"]

    def test_stats_exposes_tier_telemetry(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        stats = self._stats(cache_dir, capsys)
        for store in ("results", "traces"):
            tiers = stats[store]["tiers"]
            assert set(tiers) == {"memory", "disk", "backend"}
            assert "hits" in tiers["disk"]
