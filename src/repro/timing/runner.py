"""Glue between the functional simulator and the timing model.

Reproduces the paper's marker-based measurement methodology (Section
5.1): markers are magic instructions counted by the simulator, used to
fast-forward, warm up, and delimit the measured window so that
differently instrumented binaries are compared over the equivalent
region of execution.

Two execution strategies produce the same :class:`WindowResult`:

* **lock-step** (:func:`time_program` / :func:`time_window`) — a fresh
  functional :class:`~repro.sim.machine.Machine` feeds the timing
  model one retired instruction at a time.  This is the golden
  reference path;
* **record/replay** (:func:`record_window` + :func:`replay_window`) —
  the functional stream is serialised once
  (:mod:`repro.sim.trace_io`) and each timing configuration replays
  the decoded records, paying zero functional ``Machine.step()``
  calls.  ``tests/test_trace_replay.py`` pins that the replayed stats
  are byte-identical to the lock-stepped reference.
"""

from __future__ import annotations

import io
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.brr import RandomSource
from ..isa.program import Program
from ..sim.machine import Machine, MachineCheckpoint
from ..sim.trace_io import RecordedTrace, TraceFormatError, TraceWriter
from .config import TimingConfig
from .fastpath import (
    FastPathUnsupported,
    fastpath_mode,
    normalize_fast_mode,
    run_fastpath,
)
from . import fastpath_vec
from .pipeline import TimingSimulator, TimingStats

#: (marker id, cumulative count) pair identifying an execution point.
MarkerPoint = Tuple[int, int]


def _prewarm_code(simulator: TimingSimulator, program: Program) -> None:
    """Install the code image in the L2, as a JIT that just wrote it
    would leave it.  Without this, the first taken sample pays DRAM
    latency for compulsory misses on its (rarely executed) out-of-line
    blocks — an artifact of short simulation windows, not of either
    sampling framework."""
    line = simulator.config.line_bytes
    addr = program.base
    while addr < program.end:
        simulator.hierarchy.l2.access(addr)
        addr += line


def _machine_for(
    program: Program,
    memory_size: int,
    brr_unit: Optional[RandomSource],
    setup,
    resume_from: Optional[MachineCheckpoint] = None,
) -> Machine:
    """One machine, ready to execute.

    The shared construction path of every timing entry point: build,
    then either restore a warm-up checkpoint or apply the caller's
    ``setup`` (never both — a checkpoint already contains the effects
    of the setup that preceded it, and re-running setup could clobber
    state the program wrote before the snapshot).
    """
    machine = Machine(program, memory_size=memory_size, brr_unit=brr_unit)
    if resume_from is not None:
        machine.restore(resume_from)
    elif setup is not None:
        setup(machine)
    return machine


def _simulator_for(config: Optional[TimingConfig], program: Program,
                   prewarm_code: bool) -> TimingSimulator:
    """One timing model, with the code image optionally pre-installed."""
    simulator = TimingSimulator(config)
    if prewarm_code:
        _prewarm_code(simulator, program)
    return simulator


@dataclass
class WindowResult:
    """Timing outcome of one measured window."""

    stats: TimingStats
    total_steps: int

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def instructions(self) -> int:
        return self.stats.instructions

    def to_dict(self) -> dict:
        """Plain-scalar form for the result cache / process boundary."""
        return {"stats": self.stats.to_dict(),
                "total_steps": self.total_steps}

    @classmethod
    def from_dict(cls, data: dict) -> "WindowResult":
        return cls(stats=TimingStats.from_dict(data["stats"]),
                   total_steps=data["total_steps"])


def time_program(
    program: Program,
    brr_unit: Optional[RandomSource] = None,
    config: Optional[TimingConfig] = None,
    memory_size: int = 1 << 20,
    max_steps: int = 20_000_000,
    setup=None,
    prewarm_code: bool = True,
) -> WindowResult:
    """Time a whole program from entry to halt.

    ``setup(machine)``, if given, runs before execution — e.g. to load
    a data buffer into simulated memory.
    """
    machine = _machine_for(program, memory_size, brr_unit, setup)
    simulator = _simulator_for(config, program, prewarm_code)
    steps = 0
    while not machine.halted and steps < max_steps:
        simulator.step(machine.step())
        steps += 1
    if not machine.halted:
        raise RuntimeError(f"program did not halt within {max_steps} steps")
    return WindowResult(stats=simulator.stats, total_steps=steps)


def time_window(
    program: Program,
    begin: MarkerPoint,
    end: MarkerPoint,
    brr_unit: Optional[RandomSource] = None,
    config: Optional[TimingConfig] = None,
    memory_size: int = 1 << 20,
    fast_forward: Optional[MarkerPoint] = None,
    max_steps: int = 50_000_000,
    setup=None,
    prewarm_code: bool = True,
    trace: Optional[RecordedTrace] = None,
) -> WindowResult:
    """Time a marker-delimited window of a program.

    ``fast_forward`` (optional) is executed functionally only — the
    analogue of Simics pure-functional mode.  From there to ``begin``
    the timing model runs but its statistics are discarded (cache and
    predictor warm-up); the returned stats cover ``begin``..``end``.
    ``setup(machine)`` runs before execution (e.g. data loading).

    When a recorded ``trace`` of the same functional execution is
    supplied, the window is replayed from it instead of lock-stepping
    a fresh machine (see :func:`replay_window`); the result is
    identical either way.
    """
    if trace is not None:
        return replay_window(
            trace, begin, end, config=config, fast_forward=fast_forward,
            program=program, prewarm_code=prewarm_code,
        )
    machine = _machine_for(program, memory_size, brr_unit, setup)
    simulator = _simulator_for(config, program, prewarm_code)
    steps = 0

    if fast_forward is not None:
        steps += machine.run_until_marker(
            fast_forward[0], fast_forward[1], max_steps=max_steps
        )

    def run_to(point: MarkerPoint) -> int:
        count = 0
        marker_id, target = point
        while (not machine.halted
               and machine.marker_counts.get(marker_id, 0) < target):
            simulator.step(machine.step())
            count += 1
            if steps + count > max_steps:
                raise RuntimeError(
                    f"marker {marker_id} not reached within {max_steps} steps"
                )
        if machine.marker_counts.get(marker_id, 0) < target:
            raise RuntimeError(
                f"program halted before marker {marker_id} fired "
                f"{target} time(s)"
            )
        return count

    steps += run_to(begin)
    baseline = simulator.snapshot()
    steps += run_to(end)
    return WindowResult(stats=simulator.stats - baseline, total_steps=steps)


# ----------------------------------------------------------------------
# Record once / replay many.


def record_window(
    program: Program,
    end: MarkerPoint,
    brr_unit: Optional[RandomSource] = None,
    memory_size: int = 1 << 20,
    max_steps: int = 50_000_000,
    setup=None,
    path=None,
    resume_from: Optional[MachineCheckpoint] = None,
) -> RecordedTrace:
    """Functionally execute from program entry to the ``end`` marker
    point, serialising every retired instruction.

    This is the *record* phase: purely functional (no timing model
    runs), one pass, streamed straight into the binary encoding.  The
    returned trace carries a marker index, so any fast-forward /
    begin / end partition of the stream — for any number of timing
    configurations — resolves without re-execution.

    ``path`` writes the encoding to a file (the trace-store path);
    without it the trace is kept in memory.  ``resume_from`` starts
    from a :meth:`~repro.sim.machine.Machine.checkpoint` instead of
    entry; the trace then covers only post-checkpoint execution, and
    replayed ``total_steps`` counts are relative to the snapshot.
    """
    machine = _machine_for(program, memory_size, brr_unit, setup,
                           resume_from=resume_from)
    marker_id, target = end
    sink = open(path, "wb") if path is not None else io.BytesIO()
    try:
        writer = TraceWriter(sink)
        steps = 0
        while (not machine.halted
               and machine.marker_counts.get(marker_id, 0) < target):
            writer.append(machine.step())
            steps += 1
            if steps > max_steps:
                raise RuntimeError(
                    f"marker {marker_id} not reached within {max_steps} steps"
                )
        if machine.marker_counts.get(marker_id, 0) < target:
            raise RuntimeError(
                f"program halted before marker {marker_id} fired "
                f"{target} time(s)"
            )
        writer.finish()
        if path is not None:
            sink.close()
            return RecordedTrace.open(path)
        return RecordedTrace(sink.getvalue())
    finally:
        if path is not None and not sink.closed:
            sink.close()


# Out-of-band channel describing the most recent replay: which timing
# path ran ("fast" or "golden"), its throughput, and — when the
# validation watchdog sampled it — the golden cross-check outcome.
# Observability only — keeping it out of WindowResult keeps cached
# payloads (and the engine's content-addressed keys) byte-identical
# across paths.
_last_replay_info: Optional[Dict[str, object]] = None


def _set_replay_info(path: str, records: int, elapsed: float,
                     validation: Optional[Dict[str, object]] = None,
                     kernel: Optional[str] = None) -> None:
    global _last_replay_info
    _last_replay_info = {
        "timing_path": path,
        "timing_kernel": kernel or path,
        "replay_records": records,
        "replay_records_per_s": (records / elapsed) if elapsed > 0 else None,
    }
    if validation:
        _last_replay_info.update(validation)


def consume_replay_info() -> Optional[Dict[str, object]]:
    """Pop the telemetry of the most recent :func:`replay_window`."""
    global _last_replay_info
    info = _last_replay_info
    _last_replay_info = None
    return info


def _resolve_window(
    trace: RecordedTrace,
    begin: MarkerPoint,
    end: MarkerPoint,
    fast_forward: Optional[MarkerPoint],
) -> Tuple[int, int, int]:
    """Marker points -> resolved (i_skip, i_begin, i_end) record indices."""
    i_skip = (trace.marker_step(*fast_forward) if fast_forward is not None
              else -1)
    i_begin = trace.marker_step(*begin)
    i_end = trace.marker_step(*end)
    if not i_skip <= i_begin <= i_end:
        raise TraceFormatError(
            f"window points out of order: fast-forward@{i_skip}, "
            f"begin@{i_begin}, end@{i_end}"
        )
    return i_skip, i_begin, i_end


def _resolve_fast_mode(fast: Union[None, bool, str]) -> str:
    """``fast`` argument -> kernel mode (env-resolved when ``None``)."""
    mode = normalize_fast_mode(fast)
    return fastpath_mode() if mode is None else mode


def _replay_resolved(
    trace: RecordedTrace,
    i_skip: int,
    i_begin: int,
    i_end: int,
    config: Optional[TimingConfig],
    program: Optional[Program],
    prewarm_code: bool,
    mode: str,
) -> WindowResult:
    """Replay one resolved window under an already-resolved kernel mode."""
    n_replayed = i_end - i_skip
    if mode != "off":
        try:
            started = time.perf_counter()
            if mode == "vector":
                stats = fastpath_vec.run_fastpath_vec(
                    trace, i_skip, i_begin, i_end, config=config,
                    program=program, prewarm_code=prewarm_code,
                )
                kernel = fastpath_vec.last_kernel
            else:
                stats = run_fastpath(
                    trace, i_skip, i_begin, i_end, config=config,
                    program=program, prewarm_code=prewarm_code,
                )
                kernel = "loop"
            elapsed = time.perf_counter() - started
            stats, validation = _maybe_validate(
                stats, trace, i_skip, i_begin, i_end, config,
                program, prewarm_code)
            _set_replay_info("fast", n_replayed, elapsed,
                             validation=validation, kernel=kernel)
            return WindowResult(stats=stats, total_steps=i_end + 1)
        except FastPathUnsupported:
            pass  # golden loop below reproduces (or raises) exactly
    started = time.perf_counter()
    stats = _replay_golden(trace, i_skip, i_begin, i_end, config,
                           program, prewarm_code)
    _set_replay_info("golden", n_replayed, time.perf_counter() - started)
    return WindowResult(stats=stats, total_steps=i_end + 1)


def replay_window(
    trace: RecordedTrace,
    begin: MarkerPoint,
    end: MarkerPoint,
    config: Optional[TimingConfig] = None,
    fast_forward: Optional[MarkerPoint] = None,
    program: Optional[Program] = None,
    prewarm_code: bool = True,
    fast: Union[None, bool, str] = None,
) -> WindowResult:
    """Replay a recorded functional stream through the timing model.

    Exactly mirrors the lock-step :func:`time_window` schedule — skip
    the fast-forward prefix entirely, feed warm-up records with stats
    discarded at ``begin``, measure to ``end`` — so the resulting
    :class:`WindowResult` is byte-identical to the reference path.
    ``program`` is required when ``prewarm_code`` is set (the code
    image's address range is not part of the trace).

    ``fast`` selects the execution strategy: ``"vector"`` (the
    :mod:`~repro.timing.fastpath_vec` fixpoint kernel, which delegates
    to the loop kernel outside its envelope), ``"loop"`` (the
    per-record columnar kernel of :mod:`~repro.timing.fastpath`), or
    ``"off"`` / ``False`` (the per-record golden loop).  ``True`` is
    accepted as ``"vector"`` for backward compatibility.  ``None``
    (default) follows the ``REPRO_FAST`` environment knob.  Every
    strategy produces byte-identical stats.
    """
    i_skip, i_begin, i_end = _resolve_window(trace, begin, end,
                                             fast_forward)
    if prewarm_code and program is None:
        raise ValueError("prewarm_code requires the program image")
    return _replay_resolved(trace, i_skip, i_begin, i_end, config,
                            program, prewarm_code,
                            _resolve_fast_mode(fast))


def replay_window_batch(
    trace: RecordedTrace,
    windows: Sequence[Dict[str, object]],
    program: Optional[Program] = None,
    prewarm_code: bool = True,
    fast: Union[None, bool, str] = None,
) -> List[WindowResult]:
    """Replay several timing windows of ONE recorded trace in a batch.

    ``windows`` is a sequence of dicts with keys ``begin``, ``end`` and
    optionally ``config`` / ``fast_forward``.  All windows replay the
    same functional stream, so the per-trace work — columnar decode,
    word tables, and (on the vector kernel) the cache/branch event
    passes shared between configs with matching projections — is paid
    once instead of per window.  Results are byte-identical to calling
    :func:`replay_window` once per window; the batch form only changes
    the amortisation.  After the call, :func:`consume_replay_info`
    reports the aggregate throughput of the whole batch.
    """
    if prewarm_code and program is None:
        raise ValueError("prewarm_code requires the program image")
    mode = _resolve_fast_mode(fast)
    results: List[WindowResult] = []
    total_records = 0
    total_elapsed = 0.0
    kernels = set()
    info_fields: Dict[str, object] = {}
    for window in windows:
        begin = window["begin"]
        end = window["end"]
        config = window.get("config")
        fast_forward = window.get("fast_forward")
        started = time.perf_counter()
        results.append(
            _replay_resolved(trace,
                             *_resolve_window(trace, begin, end,
                                              fast_forward),
                             config, program, prewarm_code, mode))
        total_elapsed += time.perf_counter() - started
        info = consume_replay_info() or {}
        total_records += int(info.get("replay_records") or 0)
        kernels.add(str(info.get("timing_kernel")))
        for key, value in info.items():
            if key.startswith("validation"):
                info_fields[key] = value
    info_fields["timing_path"] = ("golden" if kernels == {"golden"}
                                  else "fast")
    info_fields["timing_kernel"] = ("+".join(sorted(kernels))
                                    if len(kernels) > 1
                                    else next(iter(kernels), "vector"))
    info_fields["batch_windows"] = len(results)
    global _last_replay_info
    _last_replay_info = {
        **info_fields,
        "replay_records": total_records,
        "replay_records_per_s": (total_records / total_elapsed
                                 if total_elapsed > 0 else None),
    }
    return results


def _replay_golden(
    trace: RecordedTrace,
    i_skip: int,
    i_begin: int,
    i_end: int,
    config: Optional[TimingConfig],
    program: Optional[Program],
    prewarm_code: bool,
) -> TimingStats:
    """The per-record reference replay loop over a resolved window."""
    simulator = _simulator_for(config, program, prewarm_code)
    baseline = simulator.snapshot()
    for index, record in enumerate(trace.records()):
        if index > i_end:
            break
        if index <= i_skip:
            continue  # functional-only fast-forward: timing never ran
        simulator.step(record)
        if index == i_begin:
            baseline = simulator.snapshot()
    return simulator.stats - baseline


def _maybe_validate(
    stats: TimingStats,
    trace: RecordedTrace,
    i_skip: int,
    i_begin: int,
    i_end: int,
    config: Optional[TimingConfig],
    program: Optional[Program],
    prewarm_code: bool,
) -> Tuple[TimingStats, Optional[Dict[str, object]]]:
    """Cross-check a fast-path result against the golden model when the
    validation watchdog (``REPRO_VALIDATE``) samples this replay.

    Returns the stats to report — the fast result, or the golden one
    under the ``fallback`` policy on divergence — plus the telemetry
    dict for :func:`_set_replay_info` (``None`` when not sampled).
    """
    # Imported lazily: repro.engine imports this package at module
    # scope, so a top-level import here would be circular.
    from ..engine import integrity

    if not integrity.take_validation_ticket():
        return stats, None
    golden = _replay_golden(trace, i_skip, i_begin, i_end, config,
                            program, prewarm_code)
    mismatches = integrity.compare_stats(stats, golden)
    if not mismatches:
        return stats, {"validation": "pass"}
    policy = integrity.get_validation_settings().policy
    detail = {"validation": "divergence",
              "validation_policy": policy,
              "validation_mismatches": mismatches}
    if policy == "raise":
        raise integrity.ValidationDivergence(
            f"fast-path replay diverged from golden model on "
            f"{len(mismatches)} field(s): "
            + ", ".join(m["field"] for m in mismatches))
    if policy == "fallback":
        return golden, detail
    return stats, detail  # "warn": keep the fast stats, report it


def overhead_percent(base_cycles: int, instrumented_cycles: int) -> float:
    """Execution-time overhead of an instrumented run vs. its baseline."""
    if base_cycles <= 0:
        raise ValueError("baseline cycle count must be positive")
    return 100.0 * (instrumented_cycles - base_cycles) / base_cycles


def cycles_per_site(base_cycles: int, instrumented_cycles: int,
                    sites_encountered: int) -> float:
    """Average added cycles per dynamically encountered sampling site
    (the Figure 14 metric)."""
    if sites_encountered <= 0:
        raise ValueError("site count must be positive")
    return (instrumented_cycles - base_cycles) / sites_encountered
