"""Shared state for the benchmark harness.

Scales are tuned so the whole ``pytest benchmarks/ --benchmark-only``
run finishes in a few minutes of pure-Python simulation.  Environment
overrides:

``REPRO_ACCURACY_SCALE``
    Fraction of the paper's invocation counts for Figures 9/10
    (default 0.05; the paper is 1.0).
``REPRO_JVM_SCALE``
    Outer-loop multiplier for the Figure 12 JVM runs (default 3).
``REPRO_MICRO_CHARS``
    Characters processed by the Section 5.3 microbenchmark (default
    4000; the paper used 500000).

Experiment execution goes through :mod:`repro.engine`, so the engine's
environment knobs apply here too (see ``docs/engine.md``):

``REPRO_JOBS``
    Worker processes for simulation windows (default 1 = serial).
``REPRO_CACHE_DIR`` / ``REPRO_CACHE``
    Window-result cache location (default ``~/.cache/repro``);
    ``REPRO_CACHE=0`` disables memoisation for honest cold timings.
``REPRO_BENCH_LOG``
    When set, every simulation window appends one JSONL record (wall
    time, cycles, instructions, cache hit/miss, worker pid) to this
    path — the machine-readable bench trajectory.
"""

from __future__ import annotations

import os
import sys
from functools import lru_cache

#: Figure tables collected during the run, printed in the terminal
#: summary (pytest captures stderr, so plain prints would be lost).
REPORTS = []


def report(text: str) -> None:
    """Record a reproduction table for the end-of-run summary."""
    REPORTS.append(text)
    print(text, file=sys.stderr)

ACCURACY_SCALE = float(os.environ.get("REPRO_ACCURACY_SCALE", "0.05"))
JVM_SCALE = float(os.environ.get("REPRO_JVM_SCALE", "3"))
MICRO_CHARS = int(os.environ.get("REPRO_MICRO_CHARS", "4000"))


@lru_cache(maxsize=1)
def _engine():
    """The benchmark run's engine, configured once from the env."""
    from repro.engine import ExperimentEngine, RunRecorder, set_engine

    log = os.environ.get("REPRO_BENCH_LOG")
    engine = ExperimentEngine(recorder=RunRecorder(log) if log else None)
    set_engine(engine)
    return engine


@lru_cache(maxsize=1)
def shared_sweep():
    """The Figure 13/14/2 microbenchmark sweep, computed once."""
    from repro.experiments import microbench_sweep

    return microbench_sweep(n_chars=MICRO_CHARS, engine=_engine())


@lru_cache(maxsize=4)
def accuracy_rows(interval: int):
    """Figure 9/10 accuracy tables, computed once per interval."""
    from repro.experiments import accuracy_figure

    return accuracy_figure(interval, scale=ACCURACY_SCALE, engine=_engine())


def run_once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
