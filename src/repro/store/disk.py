"""The local disk tier: the content-addressed on-disk layout.

Middle of the three-tier stack.  The layout is exactly what
``engine/cache.py`` and ``engine/tracestore.py`` wrote before the
store refactor — ``<root>/v<version>/<key[:2]>/<key><suffix>`` — so
pre-refactor entries stay readable byte-for-byte and a version bump
still invalidates wholesale.  This module owns everything both stores
used to duplicate about that layout: path mapping, atomic+durable
writes, version-directory iteration, and the stats/prune/clear
maintenance walks.  Decoding, integrity policy and quarantine
bookkeeping live one level up, in
:class:`~repro.store.tiered.TieredStore`.
"""

from __future__ import annotations

import contextlib
import pathlib
from typing import Any, Callable, Dict, Iterator, Tuple

from .base import TierCounters, atomic_write_bytes, atomic_write_with
from .integrity import purge_quarantine


class DiskTier:
    """Versioned content-addressed file layout under one root."""

    def __init__(self, root: pathlib.Path, version: int,
                 suffix: str) -> None:
        self.root = pathlib.Path(root)
        self.version = version
        self.suffix = suffix
        self.counters = TierCounters()

    # -- layout ---------------------------------------------------------

    @property
    def version_dir(self) -> pathlib.Path:
        return self.root / f"v{self.version}"

    def path(self, key: str) -> pathlib.Path:
        return self.version_dir / key[:2] / f"{key}{self.suffix}"

    def relative_name(self, key: str) -> str:
        """The entry's path relative to the store root — the name a
        shared :class:`~repro.store.backend.Backend` files it under,
        so every replica's backend layout matches its local one."""
        return f"v{self.version}/{key[:2]}/{key}{self.suffix}"

    def _version_dirs(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith("v") \
                    and child.name[1:].isdigit():
                yield child

    def entries(self) -> Iterator[pathlib.Path]:
        """Every current-version entry file."""
        if self.version_dir.is_dir():
            yield from self.version_dir.rglob(f"*{self.suffix}")

    # -- writes ---------------------------------------------------------

    def write_bytes(self, key: str, data: bytes, fsync: bool = True) -> bool:
        landed = atomic_write_bytes(self.path(key), data, fsync=fsync)
        if landed:
            self.counters.bytes_written += len(data)
        return landed

    def write_with(self, key: str, writer: Callable[[str], Any]) -> Any:
        """Atomic recorder-callback write (trace-store discipline);
        returns the writer's result."""
        result, _ = atomic_write_with(self.path(key), writer)
        return result

    # -- maintenance ----------------------------------------------------

    def stats(self) -> Tuple[int, int]:
        """(entries, bytes) of the current-version tree."""
        entries = 0
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
                entries += 1
            except OSError:
                continue
        return entries, total

    def prune(self, deep_strays: bool = False) -> int:
        """Drop stale-version subtrees, leftover temp files and the
        quarantine audit trail; returns the number of files removed.

        ``deep_strays`` widens the temp-file sweep from the versioned
        subtrees to the whole root — only safe for a root this store
        owns exclusively (the trace store); the result cache's root may
        nest other stores underneath it.
        """
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            if version_dir.name == f"v{self.version}":
                continue
            removed += sum(1 for p in version_dir.rglob("*") if p.is_file())
            shutil.rmtree(version_dir, ignore_errors=True)
        stray_roots = ([self.root] if deep_strays and self.root.is_dir()
                       else list(self._version_dirs()))
        for stray_root in stray_roots:
            for stray in stray_root.rglob(".tmp-*"):
                with contextlib.suppress(OSError):
                    stray.unlink()
                    removed += 1
        removed += purge_quarantine(self.root)
        return removed

    def clear(self) -> int:
        """Delete every entry file of every version; returns the count."""
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            removed += sum(1 for p in version_dir.rglob(f"*{self.suffix}"))
            shutil.rmtree(version_dir, ignore_errors=True)
        return removed

    def stats_dict(self) -> Dict[str, Any]:
        return self.counters.as_dict()
