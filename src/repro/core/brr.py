"""Architectural model of the branch-on-random instruction.

A :class:`BranchOnRandomUnit` is the per-decoder hardware from Section
3.3: an LFSR, the parallel AND tree, and the selecting mux.  Resolving
an instruction reads the condition for its freq field and clocks the
LFSR ("to minimize the power consumption, the LFSR is only clocked on
cycles in which it is used").

The module also provides:

* :class:`HardwareCounterUnit` — the deterministic take-every-Nth
  variant the paper evaluates as "hw count" in Section 4 ("essentially
  a hardware counter triggered by the branch-on-random instruction");
* :class:`DecoderBank` — superscalar decode integration, either with
  fully replicated per-decoder LFSRs or a single LFSR with
  program-order priority arbitration that splits the fetch packet when
  more branch-on-randoms arrive than LFSRs (footnote 3);
* speculative-update recovery and context save/restore built on the
  LFSR's shift-back history and scan-chain access (Section 3.4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .condition import (
    FREQ_FIELD_VALUES,
    ConditionUnit,
    check_field,
    interval_of_field,
    probability_of_field,
)
from .lfsr import Lfsr
from .taps import RECOMMENDED_WIDTH


class RandomSource:
    """Interface shared by the random and deterministic branch units."""

    def resolve(self, field: int) -> bool:
        """Resolve one branch-on-random: is it taken?"""
        raise NotImplementedError

    def probability(self, field: int) -> float:
        """Long-run taken probability for ``field``."""
        return probability_of_field(field)


class BranchOnRandomUnit(RandomSource):
    """One decoder's branch-on-random hardware.

    Parameters
    ----------
    lfsr:
        The pseudo-random state register; defaults to the paper's
        recommended 20-bit design point.
    policy:
        Bit-selection policy for the AND tree (``"spaced"`` per the
        paper's recommendation, or ``"contiguous"``).
    speculative_depth:
        When non-zero, the unit keeps that many shifted-out bits so
        squashed speculative updates can be recovered exactly
        (Section 3.4's deterministic implementation).  Zero models the
        baseline implementation where lost transitions are simply
        tolerated.
    """

    def __init__(
        self,
        lfsr: Optional[Lfsr] = None,
        policy="spaced",
        speculative_depth: int = 0,
    ) -> None:
        if lfsr is None:
            lfsr = Lfsr(RECOMMENDED_WIDTH, history_bits=speculative_depth)
        elif speculative_depth and lfsr.history_bits < speculative_depth:
            raise ValueError(
                "LFSR history too small for requested speculative depth"
            )
        self.lfsr = lfsr
        self.condition = ConditionUnit(lfsr, policy)
        self.speculative_depth = speculative_depth
        self._in_flight = 0
        #: Total branch-on-random instructions resolved.
        self.resolved = 0
        #: Total resolved taken.
        self.taken = 0

    def resolve(self, field: int) -> bool:
        """Resolve a branch-on-random at decode and clock the LFSR."""
        outcome = self.condition.evaluate(check_field(field))
        self.lfsr.step()
        if self.speculative_depth:
            self._in_flight = min(self._in_flight + 1, self.speculative_depth)
        self.resolved += 1
        if outcome:
            self.taken += 1
        return outcome

    # -- Section 3.4: determinism support ------------------------------

    @property
    def in_flight(self) -> int:
        """Speculatively resolved branch-on-randoms not yet retired."""
        return self._in_flight

    def retire(self, count: int = 1) -> None:
        """Mark ``count`` speculative resolutions as committed."""
        if count > self._in_flight:
            raise ValueError("retiring more updates than are in flight")
        self._in_flight -= count

    def squash(self, count: Optional[int] = None) -> None:
        """Undo speculative LFSR updates after a pipeline squash.

        ``count`` defaults to every in-flight update (a full squash).
        Only meaningful when built with a non-zero speculative depth.
        """
        if not self.speculative_depth:
            return  # baseline hardware: lost transitions are harmless
        if count is None:
            count = self._in_flight
        if count > self._in_flight:
            raise ValueError("squashing more updates than are in flight")
        self.lfsr.shift_back(count)
        self._in_flight -= count
        self.resolved -= count

    def save_context(self) -> int:
        """Read the LFSR for a context switch (scan-chain access)."""
        return self.lfsr.read_scan()

    def restore_context(self, value: int) -> None:
        """Restore a previously saved LFSR value."""
        self.lfsr.write_scan(value)

    # -- fast PRNG use case (Section 7) --------------------------------

    def random_bits(self, count: int) -> int:
        """Read ``count`` pseudo-random bits, as a randomized algorithm
        would use a software-readable LFSR (Section 3.4 / 7)."""
        value = 0
        for _ in range(count):
            value = (value << 1) | self.lfsr.step()
        return value


class HardwareCounterUnit(RandomSource):
    """Deterministic variant: take exactly every Nth resolution.

    Section 4.1 uses this as the "hardware counter" baseline: the same
    single-instruction interface as branch-on-random, but triggered by
    a countdown rather than the LFSR.  A separate counter is kept per
    freq field so differently encoded instructions do not interfere.
    """

    def __init__(self, phase: int = 0) -> None:
        if phase < 0:
            raise ValueError("phase must be non-negative")
        self._phase = phase
        self._counters = {}
        self.resolved = 0
        self.taken = 0

    def resolve(self, field: int) -> bool:
        field = check_field(field)
        interval = interval_of_field(field)
        count = self._counters.get(field)
        if count is None:
            count = (interval - 1 - self._phase) % interval
        taken = count == 0
        self._counters[field] = interval - 1 if taken else count - 1
        self.resolved += 1
        if taken:
            self.taken += 1
        return taken


class DecoderBank:
    """Branch-on-random hardware across a superscalar decode stage.

    ``replicated=True`` gives every decoder its own decoupled LFSR, the
    paper's simplest superscalar arrangement.  ``replicated=False``
    models the shared alternative of footnote 3: one LFSR with a
    program-order priority encoder, where a fetch packet containing
    more branch-on-randoms than LFSRs "will have to be split, with the
    additional branch-on-randoms decoded the following cycle".
    """

    def __init__(
        self,
        decode_width: int,
        replicated: bool = True,
        lfsr_width: int = RECOMMENDED_WIDTH,
        policy="spaced",
        seeds: Optional[Sequence[int]] = None,
    ) -> None:
        if decode_width < 1:
            raise ValueError("decode width must be >= 1")
        self.decode_width = decode_width
        self.replicated = replicated
        count = decode_width if replicated else 1
        if seeds is None:
            # Distinct non-zero default seeds so replicated LFSRs are
            # decorrelated, as truly decoupled hardware would be.
            seeds = [(0x9E37 * (i + 1)) & ((1 << lfsr_width) - 1) or 1
                     for i in range(count)]
        if len(seeds) != count:
            raise ValueError(f"expected {count} seeds, got {len(seeds)}")
        self.units: List[BranchOnRandomUnit] = [
            BranchOnRandomUnit(Lfsr(lfsr_width, seed=seed), policy=policy)
            for seed in seeds
        ]
        #: Extra decode cycles consumed by packet splits (shared mode).
        self.packet_splits = 0

    def resolve_packet(self, fields: Sequence[int]) -> Tuple[List[bool], int]:
        """Resolve the branch-on-randoms of one fetch packet.

        Returns the outcomes in program order and the number of decode
        cycles the packet required (1 unless a shared LFSR forces
        splitting).
        """
        if len(fields) > self.decode_width:
            raise ValueError(
                f"packet has {len(fields)} branch-on-randoms but decode "
                f"width is {self.decode_width}"
            )
        outcomes: List[bool] = []
        if self.replicated:
            for slot, field in enumerate(fields):
                outcomes.append(self.units[slot].resolve(field))
            return outcomes, 1
        unit = self.units[0]
        for field in fields:
            outcomes.append(unit.resolve(field))
        cycles = max(1, len(fields))
        self.packet_splits += max(0, len(fields) - 1)
        return outcomes, cycles


def measured_probability(unit: RandomSource, field: int, trials: int) -> float:
    """Empirical taken frequency of ``field`` over ``trials`` resolutions."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    taken = sum(1 for _ in range(trials) if unit.resolve(field))
    return taken / trials


__all__ = [
    "RandomSource",
    "BranchOnRandomUnit",
    "HardwareCounterUnit",
    "DecoderBank",
    "measured_probability",
    "FREQ_FIELD_VALUES",
]
