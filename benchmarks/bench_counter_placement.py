"""Ablation (ours): the two counter placements vs. branch-on-random.

Section 2's overhead source 4 gives counter-based sampling a choice:
keep the counter in memory (loads + stores per check) or pin it in a
register (no memory traffic, but an architectural register is lost to
the program).  This bench measures both against brr on the
microbenchmark: the register placement roughly halves cbs's framework
cost, and brr still beats it without reserving *any* register or
memory — which is the whole argument of Figure 4.
"""

from _shared import MICRO_CHARS, run_once, report

from repro.core.brr import BranchOnRandomUnit
from repro.timing.runner import overhead_percent, time_window
from repro.workloads.microbench import END_MARKER, WARM_MARKER, build_microbench

CONFIGS = (
    ("cbs, counter in memory", dict(kind="cbs", counter_in_register=False)),
    ("cbs, counter in register", dict(kind="cbs", counter_in_register=True)),
    ("branch-on-random", dict(kind="brr")),
)


def run_placement(duplication, interval=1024):
    n_chars = min(MICRO_CHARS, 4000)
    base = build_microbench(n_chars, variant="none", seed=3)
    base_t = time_window(base.program, begin=(WARM_MARKER, 1),
                         end=(END_MARKER, 1), setup=base.load_text)
    rows = []
    for label, kwargs in CONFIGS:
        bench = build_microbench(n_chars, variant=duplication,
                                 interval=interval, include_payload=False,
                                 seed=3, **kwargs)
        unit = BranchOnRandomUnit() if kwargs["kind"] == "brr" else None
        timed = time_window(bench.program, begin=(WARM_MARKER, 1),
                            end=(END_MARKER, 1), setup=bench.load_text,
                            brr_unit=unit)
        rows.append((label, overhead_percent(base_t.cycles, timed.cycles)))
    return rows


def test_counter_placement(benchmark):
    results = run_once(
        benchmark,
        lambda: {dup: run_placement(dup) for dup in ("no-dup", "full-dup")},
    )

    for duplication, rows in results.items():
        report(f"\nCounter placement at interval 1024 ({duplication}):")
        for label, overhead in rows:
            report(f"  {label:<26} {overhead:6.2f}% overhead")

    for rows in results.values():
        overheads = dict(rows)
        memory = overheads["cbs, counter in memory"]
        register = overheads["cbs, counter in register"]
        brr = overheads["branch-on-random"]
        # Register placement removes the memory traffic...
        assert register < memory
        # ...but brr still wins, with no reserved state at all.
        assert brr < register
