"""Figure 12: sampling-framework overhead on the JVM workloads.

"Software counter-based sampling (using Full-Duplication) averages
almost a 5% overhead on these weakly-optimized benchmarks, while the
branch-on-random-based framework achieves a 0.64% overhead.
Performance is normalized to a non-instrumented version of the code,
and both experiments use a sampling period of 1024."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..core.brr import BranchOnRandomUnit
from ..jvm.benchmarks import FIGURE12_BENCHMARKS, MEASURE_BEGIN, MEASURE_END
from ..jvm.compiler import compile_program
from ..timing.config import TimingConfig
from ..timing.runner import overhead_percent, time_window


@dataclass
class Fig12Row:
    """Overhead of both frameworks on one benchmark."""

    benchmark: str
    base_cycles: int
    cbs_overhead: float
    brr_overhead: float
    window_instructions: int


def run_benchmark(
    name: str,
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
) -> Fig12Row:
    """Overhead of cbs and brr Full-Duplication sampling vs. baseline."""
    jvm = FIGURE12_BENCHMARKS[name](scale)
    window = ((MEASURE_BEGIN, 1), (MEASURE_END, 1))

    base = time_window(
        compile_program(jvm, variant="none").program,
        begin=window[0], end=window[1], config=config,
    )
    cbs = time_window(
        compile_program(jvm, variant="full-dup", kind="cbs",
                        interval=interval).program,
        begin=window[0], end=window[1], config=config,
    )
    brr = time_window(
        compile_program(jvm, variant="full-dup", kind="brr",
                        interval=interval).program,
        begin=window[0], end=window[1], config=config,
        brr_unit=BranchOnRandomUnit(),
    )
    return Fig12Row(
        benchmark=name,
        base_cycles=base.cycles,
        cbs_overhead=overhead_percent(base.cycles, cbs.cycles),
        brr_overhead=overhead_percent(base.cycles, brr.cycles),
        window_instructions=base.instructions,
    )


def figure12(
    scale: float = 3.0,
    interval: int = 1024,
    config: Optional[TimingConfig] = None,
) -> List[Fig12Row]:
    """All five benchmarks plus the average row."""
    rows = [run_benchmark(name, scale=scale, interval=interval, config=config)
            for name in FIGURE12_BENCHMARKS]
    rows.append(Fig12Row(
        benchmark="average",
        base_cycles=sum(r.base_cycles for r in rows),
        cbs_overhead=sum(r.cbs_overhead for r in rows) / len(rows),
        brr_overhead=sum(r.brr_overhead for r in rows) / len(rows),
        window_instructions=sum(r.window_instructions for r in rows),
    ))
    return rows


def format_rows(rows: List[Fig12Row]) -> str:
    lines = [
        "Figure 12: framework overhead at period 1024 (Full-Duplication)",
        f"{'benchmark':<10} {'counter-based %':>16} {'branch-on-random %':>20}",
    ]
    for row in rows:
        lines.append(
            f"{row.benchmark:<10} {row.cbs_overhead:16.2f} "
            f"{row.brr_overhead:20.2f}"
        )
    return "\n".join(lines)
