"""Tests for the two cbs counter placements (Section 2, source 4).

"The sampling counter needs to either be stored in memory (requiring
additional loads and stores) or in a register (preventing the use of
that register anywhere in the instrumented code)."
"""

import pytest

from repro.instrument.arnold_ryder import (
    SamplingSpec,
    full_duplication,
    no_duplication,
)
from repro.timing.runner import time_window
from repro.workloads.microbench import (
    END_MARKER,
    WARM_MARKER,
    build_microbench,
)


class TestSpec:
    def test_register_counter_is_cbs_only(self):
        with pytest.raises(ValueError):
            SamplingSpec("brr", counter_in_register=True)

    def test_register_counter_init_has_no_memory(self):
        spec = SamplingSpec("cbs", interval=64, counter_in_register=True)
        lines = spec.init_lines()
        assert lines == ["li r12, 63"]

    def test_memory_counter_init_stores(self):
        lines = SamplingSpec("cbs", interval=64).init_lines()
        assert any(line.startswith("sw") for line in lines)


class TestCodegen:
    def site_cfg(self):
        from tests.test_instrument_arnold_ryder import counting_loop

        return counting_loop()

    def test_no_dup_register_variant_has_no_counter_memory_ops(self):
        spec = SamplingSpec("cbs", interval=8, counter_in_register=True)
        out = no_duplication(self.site_cfg(), spec, include_payload=False)
        lines = "\n".join(out.lower())
        assert "lw r12" not in lines
        assert "sw r12" not in lines
        assert "addi r12, r12, -1" in lines

    def test_full_dup_register_variant_has_no_counter_memory_ops(self):
        spec = SamplingSpec("cbs", interval=8, counter_in_register=True)
        out = full_duplication(self.site_cfg(), spec, include_payload=False)
        lines = "\n".join(out.lower())
        assert "lw r12" not in lines
        assert "sw r12" not in lines

    @pytest.mark.parametrize("duplication", ["no-dup", "full-dup"])
    def test_functional_equivalence(self, duplication):
        bench = build_microbench(800, variant=duplication, kind="cbs",
                                 interval=16, counter_in_register=True,
                                 seed=6)
        machine = bench.make_machine()
        machine.run(max_steps=2_000_000)
        checksum, counts = bench.read_results(machine)
        assert checksum == bench.expected_checksum
        assert sum(counts) > 0

    def test_register_counter_samples_at_interval(self):
        bench = build_microbench(900, variant="no-dup", kind="cbs",
                                 interval=8, counter_in_register=True,
                                 seed=6)
        machine = bench.make_machine()
        machine.run(max_steps=2_000_000)
        __, counts = bench.read_results(machine)
        # ~sites/8 samples; sites ~= 1.34 per char.
        assert abs(sum(counts) - bench.measured_sites // 8) < \
            bench.measured_sites // 8


class TestTiming:
    def test_register_counter_cheaper_than_memory_counter(self):
        """No loads/stores per check: the register placement must beat
        the memory placement (its cost is the stolen register, which
        this microbenchmark does not need)."""
        n = 2500
        base = build_microbench(n, variant="none", seed=3)
        base_t = time_window(base.program, begin=(WARM_MARKER, 1),
                             end=(END_MARKER, 1), setup=base.load_text)
        results = {}
        for reg in (False, True):
            bench = build_microbench(n, variant="no-dup", kind="cbs",
                                     interval=1024, include_payload=False,
                                     counter_in_register=reg, seed=3)
            timed = time_window(bench.program, begin=(WARM_MARKER, 1),
                                end=(END_MARKER, 1), setup=bench.load_text)
            results[reg] = timed.cycles
        assert results[True] < results[False]
