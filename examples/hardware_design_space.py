#!/usr/bin/env python3
"""Exploring the branch-on-random hardware design space (Section 3.3).

Three of the design decisions the paper discusses, made quantitative:

1. **LFSR width** — 16 bits is the minimum for all 16 frequencies;
   20 bits buys varied AND-input spacing (independence of consecutive
   outcomes); beyond that only costs flip-flops.
2. **Replicated vs. shared LFSRs** at 4-wide decode — state/gates vs.
   the packet-split penalty when two brr land in one decode group.
3. **AND-input selection** — the conditional-probability defect of
   adjacent bits, and what spacing does to it.

Run:  python examples/hardware_design_space.py
"""

from repro.analysis.randomness import conditional_taken_probability
from repro.core import estimate_cost, spaced_bits
from repro.core.brr import HardwareCounterUnit
from repro.isa import assemble
from repro.sampling import brr_decision_array
from repro.timing import TimingConfig, time_program

ADJACENT_BRR_LOOP = """
    li r1, 2000
loop:
    brr 15, a
a:  brr 15, b
b:  addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def demo_width() -> None:
    print("1. LFSR width (single decoder):")
    print(f"   {'width':>6} {'state bits':>11} {'gates':>6} "
          f"{'spaced 10-input AND':>34}")
    for width in (16, 20, 24, 32):
        cost = estimate_cost(lfsr_width=width, decode_width=1)
        spacing = spaced_bits(10, width)
        print(f"   {width:>6} {cost.state_bits:>11} {cost.gates_macro:>6} "
              f"{str(spacing):>34}")
    print("   at 16 bits the low-probability ANDs collapse to adjacent "
          "inputs; wider\n   registers keep 'some spacing even when many "
          "bits are ANDed' — the reason\n   the paper suggests a 20-bit "
          "design point.\n")


def demo_sharing() -> None:
    print("2. Replicated vs. shared LFSR at 4-wide decode:")
    for replicated in (True, False):
        cost = estimate_cost(lfsr_width=20, decode_width=4,
                             replicated=replicated)
        label = "replicated" if replicated else "shared"
        print(f"   {label:<11} {cost.state_bits:>3} bits, "
              f"{cost.gates_macro:>3} gates")
    program = assemble(ADJACENT_BRR_LOOP)
    for shared in (False, True):
        config = TimingConfig().with_overrides(brr_shared_lfsr=shared)
        result = time_program(program, brr_unit=HardwareCounterUnit(),
                              config=config)
        label = "shared" if shared else "replicated"
        print(f"   adjacent-brr worst case, {label:<11} "
              f"{result.cycles} cycles "
              f"({result.stats.brr_packet_splits} packet splits)")
    print("   sharing saves 60 bits of state; even back-to-back brr "
          "splits cost almost\n   nothing because decode has slack "
          "behind a 3-wide fetch (footnote 3's bet).\n")


def demo_bit_selection() -> None:
    print("3. AND-input selection (25% branch, P[taken | prev taken]):")
    for policy in ("contiguous", "spaced"):
        decisions = brr_decision_array(1 << 16, 1, width=20, seed=0xACE1,
                                       policy=policy)
        conditional = conditional_taken_probability(decisions.astype(int))
        print(f"   {policy:<11} {conditional:.3f} "
              f"{'(should be 0.25)' if policy == 'spaced' else '(the paper: 0.5 — one bit is guaranteed set)'}")
    print("   Section 4.2 found the profiling results insensitive to this "
          "— but the\n   spaced selection removes the defect for other "
          "applications at zero cost.")


if __name__ == "__main__":
    demo_width()
    demo_sharing()
    demo_bit_selection()
