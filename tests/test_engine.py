"""Tests for the shared experiment engine.

Covers the WindowSpec/cache-key contract, the on-disk result cache,
round-trippable timing structures, the run-artifact recorder, and —
the load-bearing property — that serial, parallel and warm-cache
execution produce byte-identical reduced results.
"""

import json
import pathlib

import pytest

from repro.engine import (
    SCHEMA_VERSION,
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    RunRecorder,
    WindowSpec,
)
from repro.timing.config import PAPER_CONFIG, TimingConfig
from repro.timing.pipeline import TimingStats
from repro.timing.runner import WindowResult


class TestWindowSpec:
    def test_param_order_is_canonical(self):
        a = WindowSpec.make("accuracy", seed=1, scale=0.01, interval=1024)
        b = WindowSpec.make("accuracy", interval=1024, scale=0.01, seed=1)
        assert a == b
        assert a.cache_key == b.cache_key

    def test_kind_param_coexists_with_window_kind(self):
        spec = WindowSpec.make("microbench", kind="cbs", interval=64)
        assert spec.kind == "microbench"
        assert spec.param("kind") == "cbs"

    def test_any_param_change_changes_key(self):
        base = WindowSpec.make("accuracy", seed=1, scale=0.01)
        assert base.cache_key != WindowSpec.make(
            "accuracy", seed=2, scale=0.01).cache_key
        assert base.cache_key != WindowSpec.make(
            "accuracy", seed=1, scale=0.02).cache_key
        assert base.cache_key != WindowSpec.make(
            "jvm", seed=1, scale=0.01).cache_key

    def test_round_trip(self):
        spec = WindowSpec.make("accuracy", taps=(32, 31, 30, 10),
                               benchmark={"name": "fop", "seed": 101},
                               policy="spaced", seed=0)
        again = WindowSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache_key == spec.cache_key

    def test_nested_structures_canonicalise(self):
        a = WindowSpec.make("x", config={"b": 1, "a": [1, 2]})
        b = WindowSpec.make("x", config={"a": (1, 2), "b": 1})
        assert a.cache_key == b.cache_key

    def test_non_jsonable_param_rejected(self):
        with pytest.raises(TypeError):
            WindowSpec.make("x", bad=object())

    def test_key_folds_in_schema_version(self):
        spec = WindowSpec.make("accuracy", seed=1)
        blob = json.dumps(
            {"schema": SCHEMA_VERSION, "kind": "accuracy",
             "params": {"seed": 1}},
            sort_keys=True, separators=(",", ":"))
        import hashlib

        assert spec.cache_key == hashlib.sha256(blob.encode()).hexdigest()


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = WindowSpec.make("accuracy", seed=1)
        assert cache.get(spec) is None
        cache.put(spec, {"value": 42})
        assert cache.get(spec) == {"value": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_versioned_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = WindowSpec.make("accuracy", seed=1)
        cache.put(spec, {"value": 1})
        key = spec.cache_key
        assert (tmp_path / f"v{SCHEMA_VERSION}" / key[:2]
                / f"{key}.json").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = WindowSpec.make("accuracy", seed=1)
        cache.put(spec, {"value": 1})
        path = cache._path(spec.cache_key)
        path.write_text("{not json")
        assert cache.get(spec) is None
        assert not path.exists()

    def test_disabled_cache_never_stores(self, tmp_path):
        cache = ResultCache(tmp_path, enabled=False)
        spec = WindowSpec.make("accuracy", seed=1)
        cache.put(spec, {"value": 1})
        assert cache.get(spec) is None
        assert not any(tmp_path.iterdir())


class TestSerialization:
    """Satellite: round-trippable timing structures (no pickle)."""

    def test_timing_config_round_trip(self):
        config = PAPER_CONFIG.with_overrides(brr_shared_lfsr=True,
                                             l2_latency=12)
        data = json.loads(json.dumps(config.to_dict()))
        assert TimingConfig.from_dict(data) == config

    def test_timing_config_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            TimingConfig.from_dict({"warp_drive": 9})

    def test_timing_stats_round_trip(self):
        stats = TimingStats(instructions=10, cycles=25, loads=3,
                            cond_branches=4, cond_mispredicts=1)
        data = json.loads(json.dumps(stats.to_dict()))
        again = TimingStats.from_dict(data)
        assert again == stats
        assert again.branch_accuracy == stats.branch_accuracy

    def test_timing_stats_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            TimingStats.from_dict({"cycles": 1, "bogons": 2})

    def test_window_result_round_trip(self):
        result = WindowResult(
            stats=TimingStats(instructions=100, cycles=240),
            total_steps=123,
        )
        data = json.loads(json.dumps(result.to_dict()))
        again = WindowResult.from_dict(data)
        assert again.cycles == result.cycles
        assert again.instructions == result.instructions
        assert again.total_steps == result.total_steps


def _tiny_specs():
    """A small mixed batch: accuracy + timing windows."""
    from repro.experiments import accuracy_window_spec, microbench_window_spec
    from repro.workloads.dacapo import spec_by_name

    return [
        accuracy_window_spec(spec_by_name("fop"), 1 << 10,
                             ("sw", "random"), 0.003, seed=0),
        accuracy_window_spec(spec_by_name("fop"), 1 << 10,
                             ("random",), 0.003, seed=1),
        microbench_window_spec(500, "full-dup", seed=1, kind="brr",
                               interval=64, lfsr_seed=64),
        microbench_window_spec(500, "none", seed=1),
    ]


class TestEngineExecution:
    def test_serial_matches_parallel_and_warm_cache(self, tmp_path):
        """Satellite: REPRO_JOBS=1, REPRO_JOBS=4 and a warm cache all
        produce byte-identical payloads (every RNG is in the key)."""
        specs = _tiny_specs()
        serial = ExperimentEngine(config=EngineConfig(jobs=1),
                                  cache=ResultCache(tmp_path / "s"))
        parallel = ExperimentEngine(config=EngineConfig(jobs=4),
                                    cache=ResultCache(tmp_path / "p"))

        serial_payloads = serial.run(specs)
        parallel_payloads = parallel.run(specs)
        warm_payloads = serial.run(specs)

        canonical = [json.dumps(p, sort_keys=True) for p in serial_payloads]
        assert canonical == [json.dumps(p, sort_keys=True)
                             for p in parallel_payloads]
        assert canonical == [json.dumps(p, sort_keys=True)
                             for p in warm_payloads]

        summary = serial.summary()
        assert summary["windows"] == 2 * len(specs)
        assert summary["cache_hits"] == len(specs)

    def test_reduced_figure_is_identical_across_backends(self, tmp_path):
        """Figure-level determinism: the reducers' JSON output is
        byte-identical whichever backend computed the windows."""
        from repro.experiments import accuracy_figure
        from repro.workloads.dacapo import spec_by_name

        benchmarks = [spec_by_name("fop"), spec_by_name("antlr")]
        outputs = [
            json.dumps(accuracy_figure(1 << 10, scale=0.003,
                                       benchmarks=benchmarks, engine=engine),
                       sort_keys=True)
            for engine in (
                ExperimentEngine(config=EngineConfig(jobs=1),
                                 cache=ResultCache(tmp_path / "s")),
                ExperimentEngine(config=EngineConfig(jobs=4),
                                 cache=ResultCache(tmp_path / "p")),
                ExperimentEngine(config=EngineConfig(jobs=1),
                                 cache=ResultCache(tmp_path / "s")),
            )
        ]
        assert outputs[0] == outputs[1] == outputs[2]

    def test_unknown_kind_raises(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path, enabled=False))
        with pytest.raises(ValueError):
            engine.run([WindowSpec.make("no-such-kind", x=1)])

    def test_empty_batch(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path))
        assert engine.run([]) == []

    def test_legacy_kwargs_warn_once_but_work(self, tmp_path):
        """Satellite: old ``ExperimentEngine(jobs=...)`` callers keep
        working through a one-warning deprecation shim."""
        with pytest.warns(DeprecationWarning) as caught:
            engine = ExperimentEngine(jobs=3, fast=False,
                                      cache=ResultCache(tmp_path))
        assert len(caught) == 1
        assert engine.jobs == 3
        assert engine.config.jobs == 3
        # Legacy booleans resolve onto the kernel-mode names.
        assert engine.fast == "off"


class TestRunArtifacts:
    def test_jsonl_records(self, tmp_path):
        log = tmp_path / "BENCH_windows.jsonl"
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "c"),
                                  recorder=RunRecorder(log))
        specs = _tiny_specs()[:2]
        engine.run(specs)
        engine.run(specs)  # warm pass appends hit records
        lines = [json.loads(line)
                 for line in log.read_text().splitlines()]
        assert len(lines) == 4
        for record in lines:
            assert {"key", "kind", "cache", "wall_s", "worker",
                    "cycles", "instructions", "ts"} <= set(record)
        assert [r["cache"] for r in lines] == ["miss", "miss", "hit", "hit"]
        assert all(r["worker"] is None for r in lines if r["cache"] == "hit")

    def test_summary_counts(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "c"))
        engine.run(_tiny_specs()[2:])
        summary = engine.summary()
        assert summary["windows"] == 2
        assert summary["cache_misses"] == 2
        assert summary["simulated_cycles"] > 0
        assert summary["simulated_instructions"] > 0
        # Fault-tolerance telemetry is always present (zero on a
        # clean run).
        assert summary["failures"] == 0
        assert summary["retries"] == 0
        assert summary["resumed"] == 0
