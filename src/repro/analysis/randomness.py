"""Statistical quality of branch-on-random's sampling placement.

Section 4 argues the LFSR's pseudo-randomness is what buys accuracy:
samples must not fall into lockstep with program periodicity. These
helpers quantify that:

* :func:`gap_distribution` — inter-sample gaps. For an ideal Bernoulli
  sampler at rate p the gaps are geometric with mean 1/p; for a
  counter they are a constant — the degenerate distribution that
  causes footnote 7's resonance.
* :func:`geometric_gap_test` — chi-squared goodness of fit of the
  observed gaps against the geometric distribution.
* :func:`autocorrelation` — serial correlation of the decision stream;
  adjacent-bit AND selection (the "contiguous" policy) shows the
  positive lag-1 correlation the paper warns about, spaced selection
  suppresses it.
* :func:`parity_balance` — the fraction of samples landing on even
  stream positions: 0.5 for a good sampler, 0 or 1 for a counter with
  an even interval (the resonance mechanism itself).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def gap_distribution(positions: Sequence[int]) -> np.ndarray:
    """Gaps between consecutive sample positions."""
    arr = np.asarray(positions, dtype=np.int64)
    if arr.size < 2:
        raise ValueError("need at least two sample positions")
    gaps = np.diff(arr)
    if (gaps <= 0).any():
        raise ValueError("positions must be strictly increasing")
    return gaps


def geometric_gap_test(positions: Sequence[int], rate: float,
                       bins: int = 8) -> Tuple[float, float]:
    """Chi-squared test of inter-sample gaps against Geometric(rate).

    Returns ``(statistic, p_value)``.  A fixed-interval counter fails
    catastrophically (all mass in one bin); an LFSR-driven brr at the
    same rate passes.
    """
    if not 0.0 < rate < 1.0:
        raise ValueError("rate must be in (0, 1)")
    from scipy import stats as scipy_stats

    gaps = gap_distribution(positions)
    # Bin edges at geometric quantiles so expected counts are equal.
    quantiles = np.arange(1, bins) / bins
    edges = scipy_stats.geom.ppf(quantiles, rate)
    edges = np.unique(edges)
    observed, __ = np.histogram(gaps, bins=np.concatenate(
        ([0.5], edges + 0.5, [np.inf])))
    cdf = scipy_stats.geom.cdf(np.concatenate((edges, [np.inf])), rate)
    probs = np.diff(np.concatenate(([0.0], cdf)))
    expected = probs * gaps.size
    keep = expected > 1e-9
    statistic, p_value = scipy_stats.chisquare(observed[keep],
                                               expected[keep] *
                                               observed[keep].sum() /
                                               expected[keep].sum())
    return float(statistic), float(p_value)


def autocorrelation(decisions: Sequence[int], lag: int = 1) -> float:
    """Serial correlation of a 0/1 decision stream at ``lag``."""
    arr = np.asarray(decisions, dtype=np.float64)
    if arr.size <= lag:
        raise ValueError("stream shorter than the requested lag")
    a = arr[:-lag] - arr.mean()
    b = arr[lag:] - arr.mean()
    denom = float(np.sqrt((a * a).sum() * (b * b).sum()))
    if denom == 0:
        return 0.0
    return float((a * b).sum() / denom)


def conditional_taken_probability(decisions: Sequence[int]) -> float:
    """P(taken at t+1 | taken at t) — the paper's worked example of
    adjacent-bit correlation: for a 25% branch from two adjacent LFSR
    bits this is 50%, not 25%."""
    arr = np.asarray(decisions, dtype=bool)
    taken_then = arr[:-1]
    if not taken_then.any():
        raise ValueError("no taken decisions in the stream")
    return float(arr[1:][taken_then].mean())


def gap_cv(positions: Sequence[int]) -> float:
    """Coefficient of variation of the inter-sample gaps.

    A geometric (memoryless) sampler at rate p has CV ≈ sqrt(1-p); a
    fixed-interval counter has CV = 0.  The LFSR stream's short-range
    correlations (the paper's adjacent-bit caveat) distort the exact
    gap *distribution* but leave the CV near the geometric value —
    which is why its sampling still behaves randomly at the scales
    profiling cares about."""
    gaps = gap_distribution(positions)
    mean = float(gaps.mean())
    if mean == 0:
        raise ValueError("degenerate gaps")
    return float(gaps.std() / mean)


def parity_balance(positions: Sequence[int]) -> float:
    """Fraction of samples at even stream positions (0.5 is ideal)."""
    arr = np.asarray(positions, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("no sample positions")
    return float((arr % 2 == 0).mean())


def placement_report(positions: Sequence[int], rate: float) -> Dict[str, float]:
    """Summary statistics of a sampler's placement quality."""
    gaps = gap_distribution(positions)
    __, p_value = geometric_gap_test(positions, rate)
    return {
        "mean_gap": float(gaps.mean()),
        "expected_gap": 1.0 / rate,
        "gap_std": float(gaps.std()),
        "gap_cv": float(gaps.std() / gaps.mean()),
        "geometric_p_value": p_value,
        "parity_balance": parity_balance(positions),
    }
