"""Benchmark-harness hooks: print the reproduced paper figures."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_terminal_summary(terminalreporter):
    from _shared import REPORTS

    if not REPORTS:
        return
    terminalreporter.section("paper figure reproductions")
    for text in REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
