"""Structured run artifacts: the machine-readable bench trajectory.

Every window the engine executes (or serves from cache) produces one
:class:`WindowRecord` — spec identity, wall time, cycles/instructions
where the window carries timing stats, cache hit/miss and the worker
that ran it.  A :class:`RunRecorder` accumulates the records, keeps
aggregate counters for ``--json`` summaries and optionally appends
each record as one JSONL line to a log file (``BENCH_*.jsonl``), which
is what CI uploads as the run artifact.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass
class WindowRecord:
    """One executed (or cache-served) window."""

    key: str
    kind: str
    label: str
    cache: str            # "hit" | "miss"
    wall_s: float
    worker: Optional[int]  # pid of the executing worker; None for hits
    cycles: Optional[int]
    instructions: Optional[int]
    ts: float
    #: Trace-store usage for timed windows: "hit" (replayed a stored
    #: functional stream), "miss" (recorded it), "off" (lock-step
    #: fallback), or None (untimed window or result-cache hit).
    trace: Optional[str] = None
    #: Encoded size of the window's functional trace, where one exists.
    trace_bytes: Optional[int] = None
    #: Functional ``Machine.step()`` calls this window actually paid —
    #: 0 on a trace hit, the full stream length on a miss or lock-step
    #: run.  The record/replay speedup criterion is audited from this.
    functional_steps: Optional[int] = None
    #: Which timing implementation ran the window: "fast" (batched
    #: columnar kernel), "golden" (per-record replay loop), "lockstep"
    #: (no trace store), or None (untimed window or result-cache hit).
    timing_path: Optional[str] = None
    #: Replay throughput in trace records per second (replays only).
    replay_records_per_s: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


class RunRecorder:
    """Collects window records; optionally streams them as JSONL."""

    def __init__(self, log_path: Optional[pathlib.Path] = None) -> None:
        self.log_path = pathlib.Path(log_path) if log_path else None
        self.records: List[WindowRecord] = []
        self._started = time.time()
        if self.log_path is not None:
            self.log_path.parent.mkdir(parents=True, exist_ok=True)

    def record(self, record: WindowRecord) -> None:
        self.records.append(record)
        if self.log_path is not None:
            with open(self.log_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record.to_dict(), sort_keys=True))
                handle.write("\n")

    def summary(self) -> Dict[str, Any]:
        """Aggregate view of the run so far, for ``--json`` output."""
        hits = sum(1 for r in self.records if r.cache == "hit")
        misses = len(self.records) - hits
        return {
            "windows": len(self.records),
            "cache_hits": hits,
            "cache_misses": misses,
            "window_wall_s": round(sum(r.wall_s for r in self.records), 4),
            "elapsed_s": round(time.time() - self._started, 4),
            "simulated_cycles": sum(r.cycles or 0 for r in self.records),
            "simulated_instructions": sum(
                r.instructions or 0 for r in self.records),
            "workers": sorted({r.worker for r in self.records
                               if r.worker is not None}),
            "trace_hits": sum(1 for r in self.records if r.trace == "hit"),
            "trace_misses": sum(1 for r in self.records
                                if r.trace == "miss"),
            "functional_steps": sum(r.functional_steps or 0
                                    for r in self.records),
            "fastpath_windows": sum(1 for r in self.records
                                    if r.timing_path == "fast"),
            "goldenpath_windows": sum(1 for r in self.records
                                      if r.timing_path == "golden"),
        }
