"""Integration tests for the per-figure experiment runners.

These run each experiment at a very small scale and assert the
*qualitative* results the paper reports — the full-scale numbers are
produced by the benchmark harness.
"""

import pytest

from repro.experiments import (
    accuracy_figure,
    bit_policy_sensitivity,
    cost_rows,
    figure12,
    format_accuracy_rows,
    format_cost_table,
    format_fig12_rows,
    format_figure13,
    format_figure14,
    format_sensitivity_result,
    microbench_sweep,
    run_accuracy,
    seed_noise_baseline,
    taps_sensitivity,
)
from repro.workloads.dacapo import spec_by_name


class TestAccuracy:
    def test_jython_random_beats_counters(self):
        """The Figure 9 headline: brr avoids the resonance that costs
        the counters accuracy on jython."""
        result = run_accuracy(spec_by_name("jython"), 1 << 10, scale=0.01)
        assert result["random"].accuracy > result["sw"].accuracy + 3
        assert result["random"].accuracy > result["hw"].accuracy + 3

    def test_clean_benchmark_schemes_comparable(self):
        result = run_accuracy(spec_by_name("luindex"), 1 << 10, scale=0.01)
        values = [r.accuracy for r in result.values()]
        assert max(values) - min(values) < 5

    def test_lower_rate_lower_accuracy(self):
        spec = spec_by_name("bloat")
        high = run_accuracy(spec, 1 << 10, schemes=("random",), scale=0.01)
        low = run_accuracy(spec, 1 << 13, schemes=("random",), scale=0.01)
        assert low["random"].accuracy < high["random"].accuracy

    def test_samples_track_interval(self):
        result = run_accuracy(spec_by_name("fop"), 1 << 10, scale=0.01)
        for r in result.values():
            expected = r.events / (1 << 10)
            assert abs(r.samples - expected) < expected * 0.5 + 10

    def test_figure_rows_include_average(self):
        rows = accuracy_figure(1 << 10, scale=0.003,
                               benchmarks=[spec_by_name("fop"),
                                           spec_by_name("antlr")])
        assert [r["benchmark"] for r in rows] == ["fop", "antlr", "average"]
        table = format_accuracy_rows(rows, "test")
        assert "average" in table

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            run_accuracy(spec_by_name("fop"), 1 << 10, schemes=("magic",),
                         scale=0.003)


class TestSensitivity:
    def test_taps_not_significant(self):
        result = taps_sensitivity(benchmark="bloat", seeds=(0, 1, 2),
                                  scale=0.004)
        assert len(result.groups) == 4
        assert not result.significant
        assert "not significant" in format_sensitivity_result(result)

    def test_bit_policy_not_significant(self):
        result = bit_policy_sensitivity(benchmark="bloat", seeds=(0, 1, 2),
                                        scale=0.004)
        assert set(result.groups) == {"contiguous", "spaced"}
        assert not result.significant

    def test_seed_noise_baseline(self):
        noise = seed_noise_baseline(benchmark="bloat", seeds=(0, 1, 2, 3),
                                    scale=0.004)
        assert 0 < noise["std"] < 10
        assert noise["min"] <= noise["mean"] <= noise["max"]


class TestFig12:
    def test_brr_beats_cbs_on_average(self):
        rows = figure12(scale=0.6)
        average = rows[-1]
        assert average.benchmark == "average"
        assert average.brr_overhead < average.cbs_overhead
        table = format_fig12_rows(rows)
        assert "jython" in table

    def test_row_fields(self):
        rows = figure12(scale=0.4)
        assert len(rows) == 6
        for row in rows[:-1]:
            assert row.base_cycles > 0
            assert row.window_instructions > 0


class TestMicrobenchSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return microbench_sweep(n_chars=1200, intervals=(8, 64, 512),
                                seed=1)

    def test_brr_floor_below_cbs(self, sweep):
        cbs = sweep.series("cbs", "full-dup", False)[-1]
        brr = sweep.series("brr", "full-dup", False)[-1]
        assert brr.cycles_per_site < cbs.cycles_per_site

    def test_overhead_decreases_with_interval(self, sweep):
        series = sweep.series("brr", "no-dup", False)
        assert series[0].overhead > series[-1].overhead

    def test_payload_costs_extra(self, sweep):
        with_payload = sweep.series("brr", "no-dup", True)[0]
        without = sweep.series("brr", "no-dup", False)[0]
        assert with_payload.overhead > without.overhead

    def test_baseline_characterisation(self, sweep):
        # Section 5.3: high cache hit rates, imperfect branch accuracy.
        assert sweep.base_l1i_hit_rate > 0.99
        assert sweep.base_l1d_hit_rate > 0.98
        assert 0.80 <= sweep.base_branch_accuracy <= 0.97
        assert sweep.full_instr_cycles_per_site > 0.3

    def test_formatters(self, sweep):
        fig13 = format_figure13(sweep)
        fig14 = format_figure14(sweep)
        assert "Figure 13" in fig13 and "brr" in fig13
        assert "Figure 14" in fig14 and "cycles/site" in fig14


class TestCostTable:
    def test_rows(self):
        rows = cost_rows()
        assert any(r.decode_width == 4 and r.replicated for r in rows)
        assert any(not r.replicated for r in rows)

    def test_format_reports_claims_hold(self):
        assert "HOLD" in format_cost_table()
