"""Tests for convergent profiling and online performance auditing."""

import random

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.sampling import ConvergentProfiler, VersionAuditor


class TestConvergentProfiler:
    def test_starts_at_initial_interval(self):
        profiler = ConvergentProfiler(initial_interval=16)
        assert profiler.current_interval("site") == 16

    def test_rate_escalates_as_profile_converges(self):
        profiler = ConvergentProfiler(
            initial_interval=2, max_interval=64, samples_per_level=8,
            unit=HardwareCounterUnit(),
        )
        rng = random.Random(1)
        for _ in range(5000):
            if profiler.encounter("site"):
                profiler.record("site", rng.gauss(10.0, 0.5))
            if profiler.current_interval("site") == 64:
                break
        assert profiler.current_interval("site") == 64

    def test_converged_flag_set(self):
        profiler = ConvergentProfiler(
            initial_interval=2, max_interval=2, samples_per_level=4,
            unit=HardwareCounterUnit(),
        )
        for _ in range(40):
            if profiler.encounter("s"):
                profiler.record("s", 5.0)
        assert profiler.sites["s"].converged

    def test_drift_triggers_recharacterization(self):
        profiler = ConvergentProfiler(
            initial_interval=2, max_interval=4, samples_per_level=8,
            drift_sigma=4.0, unit=HardwareCounterUnit(),
        )
        rng = random.Random(2)
        # Converge on a behaviour around 10.
        for _ in range(400):
            if profiler.encounter("s"):
                profiler.record("s", rng.gauss(10.0, 0.2))
        assert profiler.sites["s"].converged
        before = profiler.sites["s"].recharacterizations
        # Behaviour shifts to 20: low-frequency samples disagree.
        for _ in range(400):
            if profiler.encounter("s"):
                profiler.record("s", rng.gauss(20.0, 0.2))
        state = profiler.sites["s"]
        assert state.recharacterizations > before
        # And the rate went back up (interval back down).
        assert profiler.current_interval("s") <= 4

    def test_sites_independent(self):
        profiler = ConvergentProfiler(
            initial_interval=2, max_interval=8, samples_per_level=4,
            unit=HardwareCounterUnit(),
        )
        for _ in range(200):
            if profiler.encounter("hot"):
                profiler.record("hot", 1.0)
        assert profiler.current_interval("hot") > profiler.current_interval("cold")

    def test_validation(self):
        with pytest.raises(ValueError):
            ConvergentProfiler(initial_interval=64, max_interval=16)
        with pytest.raises(ValueError):
            ConvergentProfiler(samples_per_level=1)

    def test_counters(self):
        profiler = ConvergentProfiler(initial_interval=2,
                                      unit=HardwareCounterUnit())
        for _ in range(10):
            profiler.encounter("s")
        assert profiler.encounters == 10
        assert profiler.samples == 5


class TestVersionAuditor:
    def cost_model(self, version):
        return {"fast": 1.0, "slow": 3.0, "medium": 2.0}[version]

    def run(self, auditor, invocations=4000, noise=0.0, seed=0):
        rng = random.Random(seed)
        total_cost = 0.0
        for _ in range(invocations):
            version, audited = auditor.choose()
            cost = self.cost_model(version) + rng.gauss(0, noise)
            total_cost += cost
            if audited:
                auditor.report(version, cost)
        return total_cost

    def test_finds_fastest_version(self):
        auditor = VersionAuditor(["slow", "medium", "fast"], audit_interval=16)
        self.run(auditor)
        assert auditor.incumbent == "fast"
        assert auditor.ranking()[0][0] == "fast"

    def test_noise_tolerated(self):
        auditor = VersionAuditor(["slow", "fast"], audit_interval=16)
        self.run(auditor, noise=0.3, seed=3)
        assert auditor.incumbent == "fast"

    def test_audit_rate_low(self):
        auditor = VersionAuditor(["slow", "fast"], audit_interval=64)
        self.run(auditor, invocations=8000)
        assert auditor.audits < 8000 * (1 / 64) * 1.6

    def test_mostly_runs_incumbent(self):
        """The dispatch overhead claim: after convergence nearly every
        invocation runs the best version."""
        auditor = VersionAuditor(["slow", "fast"], audit_interval=64,
                                 min_audits=4)
        total = self.run(auditor, invocations=10_000)
        # Perfect dispatch would cost 10000; pure-slow would cost 30000.
        assert total < 12_000

    def test_unknown_version_rejected(self):
        auditor = VersionAuditor(["a", "b"])
        with pytest.raises(KeyError):
            auditor.report("c", 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            VersionAuditor(["only"])
        with pytest.raises(ValueError):
            VersionAuditor(["dup", "dup"])

    def test_deterministic_unit(self):
        auditor = VersionAuditor(["a", "b"], audit_interval=4,
                                 unit=HardwareCounterUnit())
        audited = [auditor.choose()[1] for _ in range(8)]
        assert audited == [False, False, False, True] * 2
