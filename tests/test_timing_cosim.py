"""Tests for the timing-first co-simulation (Section 5.1 methodology)."""

import pytest

from repro.core.brr import BranchOnRandomUnit, HardwareCounterUnit
from repro.core.lfsr import Lfsr
from repro.isa.asm import assemble
from repro.timing.cosim import CoSimulator, CosimDivergence, ReplayUnit

BRR_LOOP = """
    li r1, 200
    li r2, 0
loop:
    brr 1/8, hit
back:
    addi r1, r1, -1
    bne r1, r0, loop
    halt
hit:
    addi r2, r2, 1
    brra back
"""


class TestReplayUnit:
    def test_fifo_order(self):
        unit = ReplayUnit()
        unit.push(True)
        unit.push(False)
        assert unit.resolve(0) is True
        assert unit.resolve(5) is False

    def test_underflow_raises(self):
        with pytest.raises(CosimDivergence):
            ReplayUnit().resolve(0)

    def test_len(self):
        unit = ReplayUnit()
        unit.push(True)
        assert len(unit) == 1


class TestCoSimulation:
    def test_plain_program_verifies(self):
        program = assemble("""
            li r1, 50
        loop:
            addi r2, r2, 3
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        cosim = CoSimulator(program)
        stats = cosim.run()
        assert cosim.verified == stats.instructions
        assert cosim.golden.regs == cosim.leading.regs

    def test_brr_outcomes_forwarded(self):
        """The golden model takes exactly the leader's brr decisions
        without owning an LFSR."""
        program = assemble(BRR_LOOP)
        cosim = CoSimulator(program,
                            brr_unit=BranchOnRandomUnit(Lfsr(20, seed=77)))
        cosim.run()
        assert cosim.leading.regs[2] == cosim.golden.regs[2]
        assert cosim.leading.regs[2] > 0
        assert len(cosim.channel) == 0  # every outcome consumed

    def test_deterministic_unit(self):
        program = assemble(BRR_LOOP)
        cosim = CoSimulator(program, brr_unit=HardwareCounterUnit())
        cosim.run()
        assert cosim.leading.regs[2] == 200 // 8

    def test_memory_setup_applied_to_both(self):
        program = assemble("""
            li r1, 0x400
            lw r2, 0(r1)
            halt
        """)
        cosim = CoSimulator(program)
        cosim.setup(lambda m: m.memory.store_word(0x400, 99))
        cosim.run()
        assert cosim.leading.regs[2] == 99
        assert cosim.golden.regs[2] == 99

    def test_divergence_detected(self):
        """Corrupting the golden machine's state trips verification."""
        program = assemble("""
            li r1, 10
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        """)
        cosim = CoSimulator(program)
        cosim.step()
        cosim.golden.regs[1] = 999  # fault injection
        with pytest.raises(CosimDivergence) as info:
            cosim.run()
        assert info.value.field in ("r1", "pc", "next_pc")

    def test_control_flow_divergence_detected(self):
        program = assemble(BRR_LOOP)
        cosim = CoSimulator(program, brr_unit=HardwareCounterUnit())
        # Poison the channel: an extra outcome desynchronises the
        # golden machine's branch decisions.
        cosim.channel.push(True)
        with pytest.raises(CosimDivergence):
            cosim.run()

    def test_timing_stats_accumulate(self):
        program = assemble(BRR_LOOP)
        cosim = CoSimulator(program, brr_unit=HardwareCounterUnit())
        stats = cosim.run()
        assert stats.instructions == cosim.verified
        assert stats.brr_resolved > 0
        assert stats.cycles > 0

    def test_unhalted_raises(self):
        cosim = CoSimulator(assemble("spin: jmp spin"))
        with pytest.raises(RuntimeError):
            cosim.run(max_steps=100)


class TestBrrPatching:
    """Convergent profiling's code-patching step at the ISA level."""

    def test_patch_changes_rate(self):
        from repro.sim.machine import Machine

        program = assemble(BRR_LOOP)
        machine = Machine(program, brr_unit=HardwareCounterUnit())
        brr_addr = program.address_of("loop")
        # Patch 1/8 -> 1/2 before running.
        machine.patch_brr_frequency(brr_addr, 0)
        machine.run(max_steps=100_000)
        assert machine.regs[2] == 200 // 2

    def test_patch_mid_run_invalidates_decode_cache(self):
        from repro.sim.machine import Machine

        program = assemble(BRR_LOOP)
        machine = Machine(program, brr_unit=HardwareCounterUnit())
        brr_addr = program.address_of("loop")
        # Run half the loop at 1/8, then "converge" down to 1/2.
        for __ in range(100 * 4):
            machine.step()
        before = machine.regs[2]
        machine.patch_brr_frequency(brr_addr, 0)
        machine.run(max_steps=100_000)
        assert machine.regs[2] > before + 30  # rate jumped

    def test_patch_validates_opcode(self):
        from repro.sim.machine import Machine, MachineError

        program = assemble("nop\nhalt")
        machine = Machine(program)
        with pytest.raises(MachineError):
            machine.patch_brr_frequency(0, 3)

    def test_patch_validates_field(self):
        from repro.sim.machine import Machine

        program = assemble(BRR_LOOP)
        machine = Machine(program)
        with pytest.raises(ValueError):
            machine.patch_brr_frequency(program.address_of("loop"), 16)
