"""Population declaration and sampling-plan selection semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import WindowSpec
from repro.stats import PLAN_MODES, Cell, SamplingPlan, WindowPopulation


def _spec(i):
    return WindowSpec.make("accuracy", index=i)


def _population(n=10, strata=2, mandatory=()):
    cells = tuple(
        Cell(id=f"c{i}", stratum=f"s{i % strata}", specs=(_spec(i),),
             mandatory=(f"c{i}" in mandatory))
        for i in range(n)
    )
    return WindowPopulation("test", cells)


class TestPopulation:
    def test_rejects_empty_id_and_specs(self):
        with pytest.raises(ValueError):
            Cell(id="", stratum="s", specs=(_spec(0),))
        with pytest.raises(ValueError):
            Cell(id="c", stratum="s", specs=())

    def test_rejects_duplicate_cell_ids(self):
        cell = Cell(id="dup", stratum="s", specs=(_spec(0),))
        with pytest.raises(ValueError):
            WindowPopulation("test", (cell, cell))

    def test_counts_and_enumeration_order(self):
        pop = _population(n=6, strata=3)
        assert pop.size == 6
        assert pop.n_windows == 6
        assert [c.id for c in pop.enumerate()] == [f"c{i}" for i in range(6)]
        assert len(pop.specs()) == 6
        assert list(pop.strata()) == ["s0", "s1", "s2"]

    def test_multi_spec_cells_count_all_windows(self):
        cells = tuple(Cell(id=f"c{i}", stratum="s",
                           specs=(_spec(2 * i), _spec(2 * i + 1)))
                      for i in range(3))
        pop = WindowPopulation("test", cells)
        assert pop.size == 3
        assert pop.n_windows == 6
        assert len(pop.specs()) == 6

    def test_cell_lookup_and_tags(self):
        cell = Cell(id="c", stratum="s", specs=(_spec(0),),
                    tags=(("interval", 64),))
        pop = WindowPopulation("test", (cell,))
        assert pop.cell("c").tag("interval") == 64
        assert pop.cell("c").tag("missing", "d") == "d"
        with pytest.raises(KeyError):
            pop.cell("nope")


class TestPlanParsing:
    def test_parse_all_modes(self):
        assert SamplingPlan.parse("exhaustive").mode == "exhaustive"
        plan = SamplingPlan.parse("fraction:0.25", seed=7)
        assert (plan.mode, plan.fraction, plan.seed) == ("fraction", 0.25, 7)
        assert SamplingPlan.parse("budget:12").budget == 12
        assert SamplingPlan.parse("adaptive:9").budget == 9

    def test_canonical_round_trips(self):
        for text in ("exhaustive", "fraction:0.25", "budget:12",
                     "adaptive:9"):
            plan = SamplingPlan.parse(text, seed=3)
            again = SamplingPlan.parse(plan.canonical(), seed=3)
            assert again == plan
            assert SamplingPlan.from_dict(plan.to_dict()) == plan

    def test_parse_rejects_garbage(self):
        for text in ("nope", "fraction:", "fraction:0", "fraction:-1",
                     "budget:0", "budget:x", "adaptive:-3", ""):
            with pytest.raises(ValueError):
                SamplingPlan.parse(text)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            SamplingPlan(mode="nope")
        with pytest.raises(ValueError):
            SamplingPlan(mode="fraction")  # fraction required
        with pytest.raises(ValueError):
            SamplingPlan(mode="budget", budget=0)
        with pytest.raises(ValueError):
            SamplingPlan(mode="exhaustive", confidence=1.5)

    def test_modes_constant(self):
        assert PLAN_MODES == ("exhaustive", "fraction", "budget", "adaptive")


class TestSelection:
    def test_exhaustive_and_fraction_one_select_everything(self):
        pop = _population(n=8)
        for plan in (SamplingPlan(),
                     SamplingPlan(mode="fraction", fraction=1.0)):
            assert plan.select(pop) == list(pop.enumerate())

    def test_selection_is_deterministic_and_seed_sensitive(self):
        pop = _population(n=20, strata=4)
        plan = SamplingPlan(mode="fraction", fraction=0.4, seed=0)
        first = [c.id for c in plan.select(pop)]
        assert first == [c.id for c in plan.select(pop)]
        other = [c.id for c in
                 SamplingPlan(mode="fraction", fraction=0.4,
                              seed=1).select(pop)]
        assert first != other  # verified for these sizes/seeds

    def test_selection_preserves_population_order(self):
        pop = _population(n=20, strata=4)
        chosen = SamplingPlan(mode="fraction", fraction=0.5,
                              seed=3).select(pop)
        order = {cell.id: i for i, cell in enumerate(pop.enumerate())}
        indices = [order[c.id] for c in chosen]
        assert indices == sorted(indices)

    def test_budget_counts_cells(self):
        pop = _population(n=12, strata=3)
        for budget in (1, 5, 12, 40):
            chosen = SamplingPlan(mode="budget", budget=budget,
                                  seed=0).select(pop)
            assert len(chosen) == min(budget, pop.size)

    def test_mandatory_cells_always_selected(self):
        pop = _population(n=12, strata=3, mandatory=("c0", "c7"))
        chosen = SamplingPlan(mode="budget", budget=3, seed=0).select(pop)
        ids = {c.id for c in chosen}
        assert {"c0", "c7"} <= ids and len(chosen) == 3

    def test_fraction_selection_is_stratified(self):
        # 4 strata x 5 cells; half the cells should spread across all
        # strata instead of clustering.
        cells = tuple(Cell(id=f"s{s}c{i}", stratum=f"s{s}",
                           specs=(_spec(5 * s + i),))
                      for s in range(4) for i in range(5))
        pop = WindowPopulation("test", cells)
        chosen = SamplingPlan(mode="fraction", fraction=0.5,
                              seed=0).select(pop)
        per_stratum = {}
        for cell in chosen:
            per_stratum[cell.stratum] = per_stratum.get(cell.stratum, 0) + 1
        assert len(chosen) == 10
        assert set(per_stratum) == {"s0", "s1", "s2", "s3"}
        assert all(2 <= count <= 3 for count in per_stratum.values())

    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=10))
    def test_fraction_one_always_selects_all(self, n, strata, seed):
        pop = _population(n=n, strata=min(strata, n))
        plan = SamplingPlan(mode="fraction", fraction=1.0, seed=seed)
        assert plan.select(pop) == list(pop.enumerate())

    @given(st.integers(min_value=2, max_value=30),
           st.integers(min_value=0, max_value=10))
    def test_budget_never_exceeds_population(self, n, seed):
        pop = _population(n=n, strata=2)
        chosen = SamplingPlan(mode="budget", budget=n + 5,
                              seed=seed).select(pop)
        assert chosen == list(pop.enumerate())

    def test_rank_is_stable(self):
        plan = SamplingPlan(mode="fraction", fraction=0.5, seed=0)
        assert plan.rank("cell-a") == plan.rank("cell-a")
        assert plan.rank("cell-a") != plan.rank("cell-b")
