"""Property tests: timing structures vs. executable reference models."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings, strategies as st

from repro.timing.caches import Cache
from repro.timing.predictors import Gshare, ReturnAddressStack, TwoBitTable

# ----------------------------------------------------------------------
# Cache vs. a dict-based LRU reference
# ----------------------------------------------------------------------


class ReferenceLru:
    """Straightforward per-set LRU model."""

    def __init__(self, sets, ways, line):
        self.sets = sets
        self.ways = ways
        self.line = line
        self.state = {index: OrderedDict() for index in range(sets)}

    def access(self, addr):
        line = addr // self.line
        entry = self.state[line % self.sets]
        hit = line in entry
        if hit:
            entry.move_to_end(line)
        else:
            entry[line] = True
            if len(entry) > self.ways:
                entry.popitem(last=False)
        return hit


@settings(max_examples=60, deadline=None)
@given(addresses=st.lists(st.integers(0, 4095), min_size=1, max_size=300))
def test_cache_matches_reference_lru(addresses):
    cache = Cache("t", size=512, assoc=2, line_bytes=32, latency=1,
                  miss_latency=10)
    reference = ReferenceLru(sets=8, ways=2, line=32)
    for addr in addresses:
        hit = cache.access(addr) == 1
        assert hit == reference.access(addr)


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=200))
def test_cache_hit_plus_miss_equals_accesses(addresses):
    cache = Cache("t", size=1024, assoc=4, line_bytes=64, latency=1,
                  miss_latency=50)
    for addr in addresses:
        cache.access(addr)
    assert cache.hits + cache.misses == len(addresses)
    assert 0.0 <= cache.hit_rate <= 1.0


@settings(max_examples=30, deadline=None)
@given(addresses=st.lists(st.integers(0, 255), min_size=1, max_size=100))
def test_repeated_access_always_hits(addresses):
    """Second touch of any line within a working set smaller than one
    set's capacity always hits."""
    cache = Cache("t", size=16384, assoc=4, line_bytes=64, latency=1,
                  miss_latency=10)
    for addr in addresses:
        cache.access(addr)
    hits_before = cache.hits
    for addr in addresses:
        assert cache.access(addr) == 1
    assert cache.hits == hits_before + len(addresses)


# ----------------------------------------------------------------------
# Predictor reference models
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=200))
def test_two_bit_counter_reference(outcomes):
    table = TwoBitTable(4)
    counter = 1
    for taken in outcomes:
        assert table.predict(0) == (counter >= 2)
        table.update(0, taken)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        assert table.table[0] == counter


@settings(max_examples=30, deadline=None)
@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=120),
       pc=st.integers(0, 0xFFFF))
def test_gshare_history_reference(outcomes, pc):
    predictor = Gshare(6)
    history = 0
    for taken in outcomes:
        assert predictor.history == history
        predictor.update(pc * 4, taken)
        history = ((history << 1) | int(taken)) & 0b111111
    assert predictor.history == history


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.one_of(st.tuples(st.just("push"), st.integers(0, 1000)),
              st.tuples(st.just("pop"), st.just(0))),
    min_size=1, max_size=60,
))
def test_ras_matches_bounded_stack(ops):
    """The RAS behaves as a stack whose bottom falls off at capacity."""
    depth = 4
    ras = ReturnAddressStack(depth)
    model = []
    for kind, value in ops:
        if kind == "push":
            ras.push(value)
            model.append(value)
            if len(model) > depth:
                model.pop(0)
        else:
            expected = model.pop() if model else None
            assert ras.pop() == expected
