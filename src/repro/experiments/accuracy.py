"""Section 4 accuracy experiments (Figures 9 and 10).

Compares three sampling schemes on the synthetic DaCapo method-
invocation streams, measuring profile quality with the overlap metric:

- ``sw`` — the Arnold-Ryder software counter (Figure 1);
- ``hw`` — the deterministic hardware counter triggered via the brr
  interface (take every Nth);
- ``random`` — branch-on-random with an LFSR.

The two counters sample identical arithmetic progressions up to phase
(we start the hardware counter at a different phase, as a separately
initialised piece of hardware would be); branch-on-random samples the
pseudo-random positions of its LFSR AND-tree.

The (benchmark, seed) grid is declared as a
:class:`~repro.stats.WindowPopulation` stratified by benchmark; under
a non-exhaustive :class:`~repro.stats.SamplingPlan` only the selected
cells run and the figure carries per-scheme accuracy estimates with
finite-population confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..analysis.stats import mean
from ..core.condition import field_for_interval
from ..engine import ExperimentEngine, WindowSpec, is_failure, run_population
from ..sampling.positions import (
    BrrPositionStream,
    CounterPositionStream,
    overlap_from_counts,
)
from ..stats import (
    Cell,
    SamplingPlan,
    SamplingSummary,
    WindowPopulation,
    estimate_mean,
)
from ..workloads.dacapo import DACAPO_BENCHMARKS, DacapoSpec, event_chunks

SCHEMES = ("sw", "hw", "random")


def accuracy_window_spec(
    spec: DacapoSpec,
    interval: int,
    schemes: Sequence[str],
    scale: float,
    seed: int,
    lfsr_width: int = 16,
    taps: Optional[Sequence[int]] = None,
    policy: str = "spaced",
) -> WindowSpec:
    """Declarative form of one :func:`run_accuracy` call.

    The full :class:`DacapoSpec` (not just its name) rides in the spec
    so the cache key covers every workload shape parameter, and the
    workload RNG seed and LFSR derivation seed are explicit — the two
    invariants that make cached results sound.
    """
    return WindowSpec.make(
        "accuracy",
        benchmark=asdict(spec),
        interval=interval,
        schemes=tuple(schemes),
        scale=scale,
        seed=seed,
        lfsr_width=lfsr_width,
        taps=None if taps is None else tuple(taps),
        policy=policy,
    )


@dataclass
class AccuracyResult:
    """Accuracy of one (benchmark, scheme, interval) cell."""

    benchmark: str
    scheme: str
    interval: int
    accuracy: float
    samples: int
    events: int


@dataclass
class AccuracyReport:
    """Figure 9/10 rows plus, for sampled runs, the estimator footer."""

    rows: List[Dict[str, float]]
    sampling: Optional[SamplingSummary] = None


def _make_stream(scheme: str, interval: int, seed: int,
                 lfsr_width: int = 16,
                 taps: Optional[Sequence[int]] = None,
                 policy="spaced"):
    if scheme == "sw":
        return CounterPositionStream(interval)
    if scheme == "hw":
        # Same mechanism, independently initialised: different phase.
        return CounterPositionStream(interval, first=interval // 2)
    if scheme == "random":
        field = field_for_interval(interval)
        lfsr_seed = (seed * 0x9E3779B1 + 1) & ((1 << lfsr_width) - 1) or 1
        return BrrPositionStream(field, width=lfsr_width, taps=taps,
                                 seed=lfsr_seed, policy=policy)
    raise ValueError(f"unknown scheme {scheme!r}")


def run_accuracy(
    spec: DacapoSpec,
    interval: int,
    schemes: Sequence[str] = SCHEMES,
    scale: float = 0.1,
    seed: int = 0,
    lfsr_width: int = 16,
    taps: Optional[Sequence[int]] = None,
    policy="spaced",
) -> Dict[str, AccuracyResult]:
    """One benchmark at one interval: overlap accuracy per scheme.

    Streams the workload once, accumulating the full profile and each
    scheme's sampled profile chunk by chunk.
    """
    streams = {
        scheme: _make_stream(scheme, interval, seed, lfsr_width, taps, policy)
        for scheme in schemes
    }
    full = np.zeros(spec.methods, dtype=np.int64)
    sampled = {scheme: np.zeros(spec.methods, dtype=np.int64)
               for scheme in schemes}
    events = 0
    for chunk in event_chunks(spec, scale=scale, seed=seed):
        events += chunk.size
        full += np.bincount(chunk, minlength=spec.methods)
        for scheme, stream in streams.items():
            positions = stream.take(chunk.size)
            if positions.size:
                sampled[scheme] += np.bincount(chunk[positions],
                                               minlength=spec.methods)
    return {
        scheme: AccuracyResult(
            benchmark=spec.name,
            scheme=scheme,
            interval=interval,
            accuracy=overlap_from_counts(full, sampled[scheme]),
            samples=int(sampled[scheme].sum()),
            events=events,
        )
        for scheme in schemes
    }


def accuracy_population(
    interval: int,
    scale: float = 0.1,
    seeds: Sequence[int] = (0,),
    benchmarks: Iterable[DacapoSpec] = DACAPO_BENCHMARKS,
    schemes: Sequence[str] = SCHEMES,
) -> WindowPopulation:
    """The figure's full window space: one cell per (benchmark, seed)
    holding that seed's per-scheme window triple, stratified by
    benchmark."""
    cells = tuple(
        Cell(
            id=f"{spec.name}/seed{seed}",
            stratum=spec.name,
            specs=tuple(
                accuracy_window_spec(spec, interval, (scheme,), scale, seed)
                for scheme in schemes
            ),
            tags=(("benchmark", spec.name), ("seed", seed)),
        )
        for spec in benchmarks
        for seed in seeds
    )
    return WindowPopulation(f"accuracy-{interval}", cells)


def accuracy_figure_report(
    interval: int,
    scale: float = 0.1,
    seeds: Sequence[int] = (0,),
    benchmarks: Iterable[DacapoSpec] = DACAPO_BENCHMARKS,
    engine: Optional[ExperimentEngine] = None,
    plan: Optional[SamplingPlan] = None,
) -> AccuracyReport:
    """One row per benchmark: mean accuracy per scheme (plus the
    cross-benchmark average row, as in Figures 9/10).

    Each (benchmark, scheme, seed) cell is one engine window, fanned
    out in parallel; the reduction below is a pure function of the
    payloads.  Under a non-exhaustive plan, benchmarks whose every
    seed cell was left unrun drop out of the table and the report
    carries per-scheme accuracy estimates over the run cells.
    """
    benchmarks = list(benchmarks)
    population = accuracy_population(interval, scale, seeds, benchmarks)
    run = run_population(population, plan=plan, engine=engine)

    per_cell: Dict[str, Dict[str, float]] = {}
    for cell in run.cells:
        payloads = run.cell_payloads(cell.id)
        per_cell[cell.id] = {
            # Skipped windows (failure_policy="skip") degrade to NaN
            # cells; NaN then propagates into the average row.
            scheme: (float("nan") if is_failure(payload)
                     else payload["schemes"][scheme]["accuracy"])
            for scheme, payload in zip(SCHEMES, payloads)
        }

    rows: List[Dict[str, float]] = []
    sums = {scheme: 0.0 for scheme in SCHEMES}
    count = 0
    for spec in benchmarks:
        cell_values = [per_cell[f"{spec.name}/seed{seed}"]
                       for seed in seeds
                       if f"{spec.name}/seed{seed}" in per_cell]
        if not cell_values:
            continue  # no seed of this benchmark was selected
        row: Dict[str, float] = {"benchmark": spec.name}
        for scheme in SCHEMES:
            row[scheme] = mean([values[scheme] for values in cell_values])
            sums[scheme] += row[scheme]
        rows.append(row)
        count += 1
    average = {"benchmark": "average"}
    for scheme in SCHEMES:
        average[scheme] = sums[scheme] / count
    rows.append(average)

    sampling = None
    if not run.complete:
        estimates = {}
        for scheme in SCHEMES:
            values = [values[scheme] for values in per_cell.values()
                      if not math.isnan(values[scheme])]
            if values:
                estimates[f"{scheme} accuracy"] = estimate_mean(
                    values, population=population.size,
                    confidence=run.plan.confidence)
        sampling = SamplingSummary(
            plan=run.plan,
            windows_population=run.windows_population,
            windows_run=run.windows_run,
            cells_population=run.cells_population,
            cells_run=run.cells_run,
            estimates=estimates,
        )
    return AccuracyReport(rows=rows, sampling=sampling)


def accuracy_figure(
    interval: int,
    scale: float = 0.1,
    seeds: Sequence[int] = (0,),
    benchmarks: Iterable[DacapoSpec] = DACAPO_BENCHMARKS,
    engine: Optional[ExperimentEngine] = None,
    plan: Optional[SamplingPlan] = None,
) -> List[Dict[str, float]]:
    """The classic rows-only view of :func:`accuracy_figure_report`."""
    return accuracy_figure_report(interval, scale=scale, seeds=seeds,
                                  benchmarks=benchmarks, engine=engine,
                                  plan=plan).rows


def figure9_report(scale: float = 0.1, seeds: Sequence[int] = (0,),
                   engine: Optional[ExperimentEngine] = None,
                   plan: Optional[SamplingPlan] = None) -> AccuracyReport:
    """Figure 9: sampling accuracy at interval 2^10."""
    return accuracy_figure_report(1 << 10, scale=scale, seeds=seeds,
                                  engine=engine, plan=plan)


def figure10_report(scale: float = 0.1, seeds: Sequence[int] = (0,),
                    engine: Optional[ExperimentEngine] = None,
                    plan: Optional[SamplingPlan] = None) -> AccuracyReport:
    """Figure 10: sampling accuracy at interval 2^13."""
    return accuracy_figure_report(1 << 13, scale=scale, seeds=seeds,
                                  engine=engine, plan=plan)


def figure9(scale: float = 0.1, seeds: Sequence[int] = (0,),
            engine: Optional[ExperimentEngine] = None,
            plan: Optional[SamplingPlan] = None):
    """Figure 9: sampling accuracy at interval 2^10."""
    return figure9_report(scale=scale, seeds=seeds, engine=engine,
                          plan=plan).rows


def figure10(scale: float = 0.1, seeds: Sequence[int] = (0,),
             engine: Optional[ExperimentEngine] = None,
             plan: Optional[SamplingPlan] = None):
    """Figure 10: sampling accuracy at interval 2^13."""
    return figure10_report(scale=scale, seeds=seeds, engine=engine,
                           plan=plan).rows


def format_rows(rows: List[Dict[str, float]], title: str,
                sampling: Optional[SamplingSummary] = None) -> str:
    """Fixed-width table for bench output."""
    lines = [title, f"{'benchmark':<10} " + " ".join(f"{s:>8}" for s in SCHEMES)]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<10} "
            + " ".join(f"{row[s]:8.2f}" for s in SCHEMES)
        )
    if sampling is not None:
        lines.extend(sampling.describe())
    return "\n".join(lines)
