"""Cross-path differential fuzzing over generated adversarial programs.

Every generated window is executed through each *independent* path the
codebase has for producing :class:`~repro.timing.pipeline.TimingStats`:

* ``lockstep`` — the fresh-machine lock-step reference
  (:func:`~repro.timing.runner.time_window`);
* ``golden`` — record-once / golden replay (``fast="off"``);
* ``loop`` — the batched loop kernel (``fast="loop"``);
* ``vector`` — the numpy span-replay kernel (``fast="vector"``);
* ``trap`` — the two-word trap-emulated ``brr`` encoding, compared on
  the encoding-independent *functional* projection (checksum, marker
  counts, branch-on-random resolutions) because its code addresses and
  therefore its timing legitimately differ.

Stats are diffed as canonical JSON; any divergence is shrunk to a
1-minimal program (no single block can be removed and still diverge)
by a delta-debugging pass over the generator's self-contained block
lists before being reported.  ``fault=`` injects a deterministic
post-hoc perturbation into a path's payload — the self-test seam that
proves the harness detects and minimizes a real divergence (see
``tests/test_fuzz_harness.py``).

``serve_diff=`` adds one more independent path: an ephemeral
``repro serve`` instance.  Each fuzzed window is requested over HTTP
and the served JSON body is byte-compared against the document a local
``repro.api`` run produces for identical (coerced) parameters — the
wire layer, validation coercers and façade dispatch all answer to the
local path.  A body divergence is ddmin-shrunk over the window's block
budget before being reported.
"""

from __future__ import annotations

import hashlib
import json
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..timing.config import PAPER_CONFIG, TimingConfig
from ..workloads.adversarial import (
    END_MARKER,
    MEASURE_MARKER,
    AdversarialProgram,
    build_adversarial,
)

#: A deliberately tiny machine (mirroring the fast-path fuzz tests):
#: every structural hazard the timing model knows fires constantly.
STRESS_CONFIG = TimingConfig(
    fetch_width=2, decode_width=2, issue_width=2, commit_width=2,
    rob_entries=8, phys_regs=20, frontend_depth=3, backend_penalty=7,
    gshare_history_bits=6, bimodal_entries=256, chooser_entries=64,
    btb_entries=16, ras_entries=2,
    l1i_size=1024, l1i_assoc=2, l1d_size=1024, l1d_assoc=2,
    l2_size=4096, l2_assoc=2, l2_latency=4, memory_latency=30,
)

#: Default timing configurations each window replays under.
DEFAULT_CONFIGS: Tuple[Tuple[str, TimingConfig], ...] = (
    ("paper", PAPER_CONFIG),
    ("stress", STRESS_CONFIG),
)

#: ``fault(path, source, payload) -> payload`` — the injection seam.
FaultHook = Callable[[str, str, Dict[str, Any]], Dict[str, Any]]

#: ``serve_fault(window_seed, blocks, body) -> body`` — the serve-diff
#: injection seam: perturbs the *local* reference body so tests can
#: prove the serve-vs-local comparison detects and shrinks a real
#: divergence.
ServeFaultHook = Callable[[int, int, bytes], bytes]

_BEGIN = (MEASURE_MARKER, 1)
_END = (END_MARKER, 1)


@dataclass
class Divergence:
    """One cross-path mismatch, with its shrunk reproducer."""

    window_seed: int
    scheme: str
    #: e.g. ``"paper:loop-vs-golden"`` or ``"functional:trap-vs-native"``.
    comparison: str
    fields: List[str]
    #: field -> [value_a, value_b].
    details: Dict[str, List[Any]]
    blocks: int
    shrunk_blocks: Optional[int] = None
    shrunk_source: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "window_seed": self.window_seed,
            "scheme": self.scheme,
            "comparison": self.comparison,
            "fields": list(self.fields),
            "details": self.details,
            "blocks": self.blocks,
            "shrunk_blocks": self.shrunk_blocks,
            "shrunk_source": self.shrunk_source,
        }


@dataclass
class FuzzReport:
    """The differential harness's verdict over one batch of windows."""

    windows: int
    scheme: str
    configs: List[str]
    comparisons: int = 0
    #: Windows byte-compared against an ephemeral ``repro serve``
    #: instance (0 when ``serve_diff`` was off).
    serve_checked: int = 0
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return bool(self.divergences)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "windows": self.windows,
            "scheme": self.scheme,
            "configs": list(self.configs),
            "comparisons": self.comparisons,
            "serve_checked": self.serve_checked,
            "divergences": [d.to_dict() for d in self.divergences],
            "failed": self.failed,
        }


def _canonical(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _diff(a: Dict[str, Any], b: Dict[str, Any]
          ) -> Tuple[List[str], Dict[str, List[Any]]]:
    fields = sorted(set(a) | set(b))
    mismatched = [name for name in fields if a.get(name) != b.get(name)]
    return mismatched, {name: [a.get(name), b.get(name)]
                        for name in mismatched}


def _timing_payloads(adversarial: AdversarialProgram,
                     config: TimingConfig,
                     fault: Optional[FaultHook]) -> Dict[str, Dict[str, Any]]:
    """Canonical TimingStats dicts for every timing path."""
    from ..timing.runner import record_window, replay_window, time_window

    program = adversarial.program()
    source = adversarial.source()
    trace = record_window(program, end=_END,
                          brr_unit=adversarial.brr_unit(),
                          setup=adversarial.setup)
    payloads: Dict[str, Dict[str, Any]] = {}
    lockstep = time_window(program, begin=_BEGIN, end=_END, config=config,
                           brr_unit=adversarial.brr_unit(),
                           setup=adversarial.setup)
    payloads["lockstep"] = lockstep.stats.to_dict()
    for path, fast in (("golden", "off"), ("loop", "loop"),
                       ("vector", "vector")):
        result = replay_window(trace, begin=_BEGIN, end=_END, config=config,
                               program=program, fast=fast)
        payloads[path] = result.stats.to_dict()
    if fault is not None:
        payloads = {path: fault(path, source, payload)
                    for path, payload in payloads.items()}
    return payloads


def _functional_payloads(adversarial: AdversarialProgram,
                         fault: Optional[FaultHook]
                         ) -> Dict[str, Dict[str, Any]]:
    source = adversarial.source()
    payloads = {
        "native": adversarial.run_functional("native").to_dict(),
        "trap": adversarial.run_functional("trap").to_dict(),
    }
    if fault is not None:
        payloads = {path: fault(f"functional:{path}", source, payload)
                    for path, payload in payloads.items()}
    return payloads


#: (path, reference) pairs diffed per timing configuration.
TIMING_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("golden", "lockstep"),
    ("loop", "golden"),
    ("vector", "golden"),
)


def _window_divergences(adversarial: AdversarialProgram,
                        configs: Sequence[Tuple[str, TimingConfig]],
                        fault: Optional[FaultHook],
                        ) -> Tuple[List[Tuple[str, List[str],
                                              Dict[str, List[Any]]]], int]:
    """Every divergent comparison for one program, plus the number of
    comparisons made.  Each entry is (comparison, fields, details)."""
    found: List[Tuple[str, List[str], Dict[str, List[Any]]]] = []
    compared = 0
    for name, config in configs:
        payloads = _timing_payloads(adversarial, config, fault)
        for path, reference in TIMING_PAIRS:
            compared += 1
            if _canonical(payloads[path]) != _canonical(payloads[reference]):
                fields, details = _diff(payloads[path], payloads[reference])
                found.append((f"{name}:{path}-vs-{reference}", fields,
                              details))
    functional = _functional_payloads(adversarial, fault)
    compared += 1
    if _canonical(functional["trap"]) != _canonical(functional["native"]):
        fields, details = _diff(functional["trap"], functional["native"])
        found.append(("functional:trap-vs-native", fields, details))
    return found, compared


def _minimize(blocks: List[List[str]],
              still_fails: Callable[[List[List[str]]], bool]
              ) -> List[List[str]]:
    """Delta-debugging block removal: returns a 1-minimal block list
    (removing any single remaining block makes the failure vanish)."""
    chunk = max(1, len(blocks) // 2)
    while True:
        position, removed = 0, False
        while position < len(blocks):
            candidate = blocks[:position] + blocks[position + chunk:]
            if len(candidate) < len(blocks) and still_fails(candidate):
                blocks, removed = candidate, True
            else:
                position += chunk
        if chunk > 1:
            chunk = max(1, chunk // 2)
        elif not removed:
            return blocks


def shrink_divergence(adversarial: AdversarialProgram,
                      comparison: str,
                      configs: Sequence[Tuple[str, TimingConfig]],
                      fault: Optional[FaultHook] = None,
                      max_checks: int = 256) -> AdversarialProgram:
    """Shrink a diverging program to a 1-minimal reproducer.

    ``comparison`` names the failure being preserved; candidate
    programs that raise (instead of diverging) do not count as
    reproducing it.
    """
    budget = {"left": max_checks}

    def reproduces(candidate: AdversarialProgram) -> bool:
        if budget["left"] <= 0:
            return False
        budget["left"] -= 1
        try:
            found, _ = _window_divergences(candidate, configs, fault)
        except Exception:
            return False
        return any(name == comparison for name, _, _ in found)

    body = _minimize(
        adversarial.body_blocks,
        lambda blocks: reproduces(adversarial.replace(body_blocks=blocks)))
    shrunk = adversarial.replace(body_blocks=body)
    warm = _minimize(
        shrunk.warm_blocks,
        lambda blocks: reproduces(shrunk.replace(warm_blocks=blocks)))
    return shrunk.replace(warm_blocks=warm)


# ----------------------------------------------------------------------
# The serve-vs-local path: the wire layer answers to the façade.

def _fuzz_wire_params(window_seed: int, scheme: str,
                      blocks: int) -> Dict[str, str]:
    """One window's request parameters, as the strings a query string
    would carry — both paths coerce them through the same
    ``validate_request``, so shape differences cannot hide."""
    return {"windows": "1", "seed": str(window_seed), "scheme": scheme,
            "blocks": str(blocks), "shrink": "false"}


def _local_fuzz_body(window_seed: int, scheme: str, blocks: int,
                     serve_fault: Optional[ServeFaultHook]) -> bytes:
    """The byte-exact body a correct server must answer with: the
    façade result wrapped in the serve document encoding."""
    from .. import api
    from ..serve.service import validate_request

    resolved = validate_request(
        "fuzz", _fuzz_wire_params(window_seed, scheme, blocks))
    result = api.run_fuzz(**resolved)
    params = {name: (list(value) if isinstance(value, tuple) else value)
              for name, value in resolved.items()}
    document = {"command": "fuzz", "params": params,
                "data": result.data, "text": result.text}
    body = json.dumps(document, sort_keys=True).encode("utf-8")
    if serve_fault is not None:
        body = serve_fault(window_seed, blocks, body)
    return body


def _served_fuzz_body(port: int, window_seed: int, scheme: str,
                      blocks: int) -> bytes:
    query = urllib.parse.urlencode(
        _fuzz_wire_params(window_seed, scheme, blocks))
    url = f"http://127.0.0.1:{port}/v1/figure/fuzz?{query}"
    with urllib.request.urlopen(url, timeout=300) as response:
        return response.read()


def _body_digest(body: bytes) -> str:
    return f"sha256:{hashlib.sha256(body).hexdigest()[:16]}/{len(body)}B"


def _serve_window_diff(port: int, window_seed: int, scheme: str,
                       blocks: int,
                       serve_fault: Optional[ServeFaultHook]
                       ) -> Optional[Dict[str, List[Any]]]:
    """``None`` when served and local bodies agree byte-for-byte."""
    served = _served_fuzz_body(port, window_seed, scheme, blocks)
    local = _local_fuzz_body(window_seed, scheme, blocks, serve_fault)
    if served == local:
        return None
    return {"body": [_body_digest(served), _body_digest(local)]}


def _serve_stage(report: FuzzReport, *, windows: int, seed: int,
                 scheme: str, blocks: int, shrink: bool,
                 serve_fault: Optional[ServeFaultHook]) -> None:
    """Diff every fuzzed window's served body against the local façade.

    Divergences fold into ``report.divergences`` under the
    ``serve:served-vs-local`` comparison; a diverging window is
    ddmin-shrunk over its block budget (the smallest ``blocks`` that
    still diverges)."""
    from ..serve.http import ServerThread

    with ServerThread() as server:
        port = server.port
        for index in range(windows):
            window_seed = seed + index
            details = _serve_window_diff(port, window_seed, scheme,
                                         blocks, serve_fault)
            report.serve_checked += 1
            report.comparisons += 1
            if details is None:
                continue
            divergence = Divergence(
                window_seed=window_seed, scheme=scheme,
                comparison="serve:served-vs-local",
                fields=["body"], details=details, blocks=blocks)
            if shrink:
                def still_fails(candidate: List[Any]) -> bool:
                    if not candidate:
                        return False
                    return _serve_window_diff(
                        port, window_seed, scheme, len(candidate),
                        serve_fault) is not None

                minimal = _minimize(list(range(blocks)), still_fails)
                divergence.shrunk_blocks = len(minimal)
            report.divergences.append(divergence)


def run_differential_fuzz(
    *,
    windows: int = 25,
    seed: int = 0,
    scheme: str = "mixed",
    blocks: int = 24,
    configs: Optional[Sequence[Tuple[str, TimingConfig]]] = None,
    shrink: bool = True,
    fault: Optional[FaultHook] = None,
    serve_diff: bool = False,
    serve_fault: Optional[ServeFaultHook] = None,
) -> FuzzReport:
    """Run ``windows`` generated programs through every path and diff.

    Window ``i`` uses seed ``seed + i`` and rotates the structural
    stressors (call depth, history alternators, loop shape) so one
    batch covers RAS pressure, history dilution and loop replay.
    Deterministic: same arguments, same report.

    ``serve_diff`` additionally byte-compares each window served by an
    ephemeral ``repro serve`` instance against the local façade (see
    :func:`_serve_stage`).
    """
    if configs is None:
        configs = DEFAULT_CONFIGS
    report = FuzzReport(windows=windows, scheme=scheme,
                        configs=[name for name, _ in configs])
    for index in range(windows):
        adversarial = build_adversarial(
            scheme=scheme,
            seed=seed + index,
            blocks=blocks,
            call_depth=index % 3,
            history_stress=index % 2,
            loop_shape=(2,) if index % 2 else (1,),
        )
        found, compared = _window_divergences(adversarial, configs, fault)
        report.comparisons += compared
        for position, (comparison, fields, details) in enumerate(found):
            divergence = Divergence(
                window_seed=seed + index,
                scheme=scheme,
                comparison=comparison,
                fields=fields,
                details=details,
                blocks=(len(adversarial.warm_blocks)
                        + len(adversarial.body_blocks)),
            )
            if shrink and position == 0:
                shrunk = shrink_divergence(adversarial, comparison,
                                           configs, fault)
                divergence.shrunk_blocks = (len(shrunk.warm_blocks)
                                            + len(shrunk.body_blocks))
                divergence.shrunk_source = shrunk.source()
            report.divergences.append(divergence)
    if serve_diff:
        _serve_stage(report, windows=windows, seed=seed, scheme=scheme,
                     blocks=blocks, shrink=shrink, serve_fault=serve_fault)
    return report


def format_fuzz(report: FuzzReport) -> str:
    """The human-readable verdict."""
    served = (f", {report.serve_checked} served-vs-local"
              if report.serve_checked else "")
    lines = [
        f"differential fuzz: {report.windows} windows "
        f"({report.scheme} scheme), configs "
        f"{'/'.join(report.configs)}, {report.comparisons} comparisons"
        f"{served}",
    ]
    if not report.divergences:
        lines.append("all execution paths agree: 0 divergences")
        return "\n".join(lines)
    lines.append(f"FAIL: {len(report.divergences)} divergence(s)")
    for divergence in report.divergences:
        shrunk = ("" if divergence.shrunk_blocks is None else
                  f" (shrunk {divergence.blocks} -> "
                  f"{divergence.shrunk_blocks} blocks)")
        lines.append(
            f"  seed {divergence.window_seed} {divergence.comparison}: "
            f"{', '.join(divergence.fields)}{shrunk}")
    return "\n".join(lines)
