"""RISC-style ISA with the architected branch-on-random extension.

Exports the instruction model (:mod:`~repro.isa.instructions`), the
two-pass assembler (:mod:`~repro.isa.asm`), assembled program images
(:mod:`~repro.isa.program`) and the disassembler
(:mod:`~repro.isa.disasm`).
"""

from .asm import AsmError, Assembler, TRAP_BRR_OPCODE, assemble, parse_freq
from .disasm import disassemble, disassemble_word, format_instruction
from .instructions import (
    LINK_REG,
    NUM_REGS,
    WORD,
    EncodingError,
    Format,
    Instruction,
    InvalidOpcodeError,
    Op,
    decode,
    encode,
)
from .program import Program

__all__ = [
    "AsmError",
    "Assembler",
    "TRAP_BRR_OPCODE",
    "assemble",
    "parse_freq",
    "disassemble",
    "disassemble_word",
    "format_instruction",
    "LINK_REG",
    "NUM_REGS",
    "WORD",
    "EncodingError",
    "Format",
    "Instruction",
    "InvalidOpcodeError",
    "Op",
    "decode",
    "encode",
    "Program",
]
