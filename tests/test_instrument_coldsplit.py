"""Tests for cold-block marking and split lowering."""

import pytest

from repro.core.brr import HardwareCounterUnit
from repro.instrument.arnold_ryder import (
    SamplingSpec,
    full_duplication,
    no_duplication,
)
from repro.instrument.cfg import Block, Cfg, Terminator
from repro.isa.asm import assemble
from repro.sim.machine import Machine


def loop_with_site():
    cfg = Cfg("s", entry="entry")
    cfg.add(Block("entry", body=["li r1, 12"],
                  term=Terminator("fall", target="head")))
    head = cfg.add(Block("head", body=["addi r2, r2, 1"],
                         term=Terminator("fall", target="latch")))
    head.site_id, head.site_lines = 0, ["addi r9, r9, 1"]
    cfg.add(Block("latch", body=["addi r1, r1, -1"],
                  term=Terminator("cond", op="bne", ra="r1", rb="r0",
                                  taken="head", target="exit")))
    cfg.add(Block("exit", term=Terminator("halt")))
    return cfg


class TestColdMarking:
    def test_no_dup_sample_blocks_cold(self):
        out = no_duplication(loop_with_site(), SamplingSpec("brr"))
        assert out.block("head__smp").cold
        assert not out.block("head__res").cold

    def test_full_dup_duplicates_cold(self):
        out = full_duplication(loop_with_site(), SamplingSpec("brr"))
        for name in out.order:
            block = out.block(name)
            assert block.cold == name.endswith("__dup"), name

    def test_cbs_trailing_blocks_cold(self):
        out = full_duplication(loop_with_site(), SamplingSpec("cbs"))
        cold_names = [b.name for b in out.blocks() if b.cold]
        assert any(name.endswith("__chks") for name in cold_names)

    def test_clone_preserves_cold(self):
        block = Block("b", cold=True)
        assert block.clone("b2").cold


class TestSplitLowering:
    def test_sections_partition_blocks(self):
        out = full_duplication(loop_with_site(), SamplingSpec("brr"))
        hot, cold = out.lower_split()
        combined = out.lower()
        assert combined == hot + cold
        # Every dup label is in the cold section only.
        assert any("__dup:" in line for line in cold)
        assert not any("__dup:" in line for line in hot)

    def test_cold_section_entered_by_branch_only(self):
        """The hot section must not fall off its end into nothing: its
        last block ends in an explicit transfer."""
        out = full_duplication(loop_with_site(), SamplingSpec("brr"))
        hot, __ = out.lower_split()
        last_instr = [l for l in hot if not l.endswith(":")][-1]
        mnemonic = last_instr.split()[0]
        assert mnemonic in ("halt", "ret", "jmp", "brra")

    def test_fall_across_sections_gets_jump(self):
        cfg = Cfg("x", entry="a")
        cfg.add(Block("a", term=Terminator("fall", target="c")))
        cfg.add(Block("b", cold=True, term=Terminator("jump", target="c")))
        cfg.add(Block("c", term=Terminator("halt")))
        hot, cold = cfg.lower_split()
        # In the hot section, a falls to c which IS next (b removed).
        assert "jmp x__c" not in hot
        assert "jmp x__c" in cold

    def test_split_program_executes_identically(self):
        spec = SamplingSpec("brr", interval=4)
        out = full_duplication(loop_with_site(), spec)
        hot, cold = out.lower_split()
        combined = "\n".join(["jmp " + out.label(out.entry)] + out.lower())
        split = "\n".join(["jmp " + out.label(out.entry)] + hot + cold)
        results = []
        for source in (combined, split):
            machine = Machine(assemble(source),
                              brr_unit=HardwareCounterUnit())
            machine.run(max_steps=10_000)
            results.append((machine.regs[2], machine.regs[9]))
        assert results[0] == results[1]
        assert results[0][0] == 12  # loop body always runs
        assert results[0][1] == 3   # 12 checks at 1/4 -> 3 samples

    def test_empty_cold_section(self):
        cfg = Cfg("y", entry="a")
        cfg.add(Block("a", term=Terminator("halt")))
        hot, cold = cfg.lower_split()
        assert cold == []
        assert hot == ["y__a:", "halt"]
