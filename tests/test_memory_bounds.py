"""Regression tests: simulator memory stays bounded on long runs.

Two structures used to grow with simulated time rather than with
program size: the functional simulator's decode cache and the timing
pipeline's per-cycle bandwidth maps.  Both now carry explicit bounds;
these tests pin them over a window of >16384 cycles.
"""

from repro.isa.asm import assemble
from repro.sim.machine import Machine
from repro.timing.pipeline import TimingSimulator, _Bandwidth

#: A tight loop long enough to retire far more than 16384 cycles.
LONG_LOOP = """
    li r1, 20000
    li r2, 0
loop:
    addi r2, r2, 1
    addi r1, r1, -1
    bne r1, r0, loop
    halt
"""


def _run_long_window():
    machine = Machine(assemble(LONG_LOOP))
    simulator = TimingSimulator()
    while not machine.halted:
        simulator.step(machine.step())
    return machine, simulator


class TestLongWindowBounds:
    def test_structures_bounded_over_long_window(self):
        machine, simulator = _run_long_window()
        assert simulator.stats.cycles > 16384  # the window is long enough
        assert len(machine._decode_cache) <= Machine.DECODE_CACHE_LIMIT
        # The decode cache tracks program size, not simulated time.
        assert len(machine._decode_cache) <= len(machine.program.words)
        for bandwidth in (simulator._decode_bw, simulator._issue_bw,
                          simulator._commit_bw):
            assert len(bandwidth._counts) <= (
                _Bandwidth.PRUNE_THRESHOLD + _Bandwidth.PRUNE_WINDOW)

    def test_bandwidth_prunes_stale_cycles(self):
        bandwidth = _Bandwidth(width=1)
        for cycle in range(_Bandwidth.PRUNE_THRESHOLD + 100):
            bandwidth.allocate(cycle)
        assert len(bandwidth._counts) <= (
            _Bandwidth.PRUNE_THRESHOLD + _Bandwidth.PRUNE_WINDOW)
        # Entries far behind the newest allocation are gone.
        assert 0 not in bandwidth._counts


class TestDecodeCacheEviction:
    def test_decode_cache_respects_limit(self):
        machine = Machine(assemble(LONG_LOOP), decode_cache_limit=3)
        machine.run(max_steps=200_000)
        assert len(machine._decode_cache) <= 3
        # Correctness is unaffected by eviction: the loop still
        # counted all 20000 iterations.
        assert machine.regs[2] == 20000

    def test_eviction_matches_unbounded_execution(self):
        bounded = Machine(assemble(LONG_LOOP), decode_cache_limit=2)
        unbounded = Machine(assemble(LONG_LOOP))
        bounded.run(max_steps=200_000)
        unbounded.run(max_steps=200_000)
        assert bounded.regs == unbounded.regs
        assert bounded.instret == unbounded.instret
