"""One runner per paper table/figure, shared by benches and examples."""

from .accuracy import (
    AccuracyResult,
    accuracy_figure,
    accuracy_window_spec,
    figure9,
    figure10,
    format_rows as format_accuracy_rows,
    run_accuracy,
)
from .cost_table import cost_rows, format_cost_table
from .fig12 import (
    Fig12Row,
    figure12,
    format_rows as format_fig12_rows,
    jvm_window_spec,
    run_benchmark,
)
from .fig13 import (
    COMBOS,
    INTERVALS,
    MicrobenchSweep,
    SweepPoint,
    format_figure13,
    format_figure14,
    microbench_sweep,
    microbench_window_spec,
    sampling_payoff_interval,
)
from .scorecard import (
    ClaimResult,
    format_scorecard,
    run_scorecard,
    scorecard_failed,
)
from .sensitivity import (
    SensitivityResult,
    bit_policy_sensitivity,
    format_result as format_sensitivity_result,
    seed_noise_baseline,
    taps_sensitivity,
    width_sensitivity,
)

__all__ = [
    "ClaimResult",
    "format_scorecard",
    "run_scorecard",
    "scorecard_failed",
    "AccuracyResult",
    "accuracy_figure",
    "accuracy_window_spec",
    "jvm_window_spec",
    "microbench_window_spec",
    "figure9",
    "figure10",
    "format_accuracy_rows",
    "run_accuracy",
    "cost_rows",
    "format_cost_table",
    "Fig12Row",
    "figure12",
    "format_fig12_rows",
    "run_benchmark",
    "COMBOS",
    "INTERVALS",
    "MicrobenchSweep",
    "SweepPoint",
    "format_figure13",
    "format_figure14",
    "microbench_sweep",
    "sampling_payoff_interval",
    "SensitivityResult",
    "bit_policy_sensitivity",
    "format_sensitivity_result",
    "seed_noise_baseline",
    "taps_sensitivity",
    "width_sensitivity",
]
