"""Two-pass assembler for the reproduction ISA.

Syntax overview (one statement per line, ``;`` or ``#`` comments)::

    loop:
        lb    r2, 0(r1)        ; load byte
        addi  r1, r1, 1
        slti  r3, r2, 97
        beq   r3, r0, lower
        brr   1/1024, profile  ; branch-on-random, interval syntax
        brra  common           ; 100%-taken brr (footnote 4)
        jal   helper
        ret                    ; pseudo: jr lr
        marker 1
        halt
        .word 0xdeadbeef

Branch-on-random frequencies accept three spellings: a raw field value
(``brr 9, target``), an interval (``brr 1/1024, target``), or a percent
(``brr 1%, target`` — rounded to the nearest encodable power of two,
exactly how a compiler would emit the instruction).

``brr_mode="trap"`` reproduces the paper's Section 3.4/4.1 software
emulation: each ``brr`` is emitted as an *invalid opcode* carrying the
freq field "followed by 4 bytes for a branch offset"; the functional
simulator's SIGILL-style handler emulates the branch.  ``brra`` lowers
to a plain ``jmp`` in trap mode (its only difference from ``jmp`` is
microarchitectural).
"""

from __future__ import annotations

import re
from typing import Dict, List

from .instructions import (
    WORD,
    EncodingError,
    Format,
    Instruction,
    Op,
    encode,
)
from .program import Program
from ..core.condition import field_for_interval, nearest_field

#: Opcode value (bits 31:26) reserved as *un-architected*: decoding it
#: raises InvalidOpcodeError, which the trap-emulation path catches.
TRAP_BRR_OPCODE = 0x3D

#: Registers may be written r0..r15 or by ABI alias.
REG_ALIASES = {"sp": 14, "lr": 15}


class AsmError(Exception):
    """Assembly failure, annotated with the offending line."""

    def __init__(self, message: str, line_no: int, line: str) -> None:
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")
        self.line_no = line_no
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_TOKEN_SPLIT = re.compile(r"[,\s]+")
_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")


def parse_register(token: str) -> int:
    token = token.lower()
    if token in REG_ALIASES:
        return REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        reg = int(token[1:])
        if 0 <= reg < 16:
            return reg
    raise ValueError(f"not a register: {token!r}")


def parse_int(token: str) -> int:
    return int(token, 0)


def parse_freq(token: str) -> int:
    """Parse a brr frequency operand into its 4-bit field value."""
    token = token.strip()
    if token.endswith("%"):
        return nearest_field(float(token[:-1]) / 100.0)
    if "/" in token:
        numerator, denominator = token.split("/", 1)
        if int(numerator) != 1:
            raise ValueError(f"frequency ratio must be 1/N: {token!r}")
        return field_for_interval(int(denominator, 0))
    return int(token, 0)


class _Statement:
    """One assembled statement (pass-1 record)."""

    def __init__(self, kind: str, args: List[str], line_no: int,
                 line: str, size_words: int) -> None:
        self.kind = kind
        self.args = args
        self.line_no = line_no
        self.line = line
        self.size_words = size_words
        self.address = 0  # filled in by layout


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, base: int = 0, brr_mode: str = "native") -> None:
        if brr_mode not in ("native", "trap"):
            raise ValueError(f"brr_mode must be 'native' or 'trap': {brr_mode!r}")
        self.base = base
        self.brr_mode = brr_mode

    # -- public entry ---------------------------------------------------

    def assemble(self, source: str) -> Program:
        statements, symbols = self._parse_and_layout(source)
        words: List[int] = []
        source_map: Dict[int, str] = {}
        for stmt in statements:
            emitted = self._emit(stmt, symbols)
            index = len(words)
            for offset, word in enumerate(emitted):
                source_map[index + offset] = stmt.line.strip()
            words.extend(emitted)
        return Program(words, base=self.base, symbols=symbols,
                       source_map=source_map)

    # -- pass 1: parse, size, lay out ------------------------------------

    def _parse_and_layout(self, source: str):
        statements: List[_Statement] = []
        symbols: Dict[str, int] = {}
        address = self.base
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";")[0].split("#")[0]
            text = line.strip()
            while text:
                match = _LABEL_RE.match(text)
                if match:
                    label = match.group(1)
                    if label in symbols:
                        raise AsmError(f"duplicate label {label!r}", line_no, raw)
                    symbols[label] = address
                    text = text[match.end():].strip()
                    continue
                stmt = self._parse_statement(text, line_no, raw)
                stmt.address = address
                address += stmt.size_words * WORD
                statements.append(stmt)
                text = ""
        return statements, symbols

    def _parse_statement(self, text: str, line_no: int, raw: str) -> _Statement:
        tokens = [t for t in _TOKEN_SPLIT.split(text) if t]
        mnemonic = tokens[0].lower()
        args = tokens[1:]
        if mnemonic == ".word":
            return _Statement(".word", args, line_no, raw, len(args))
        if mnemonic == ".space":
            try:
                count = parse_int(args[0])
            except (IndexError, ValueError):
                raise AsmError(".space needs a word count", line_no, raw)
            return _Statement(".space", [str(count)], line_no, raw, count)
        if mnemonic == "brr" and self.brr_mode == "trap":
            # Invalid opcode word + 4-byte branch offset (Section 4.1).
            return _Statement("brr.trap", args, line_no, raw, 2)
        if mnemonic == "brra" and self.brr_mode == "trap":
            return _Statement("jmp", args, line_no, raw, 1)
        if mnemonic == "ret":
            return _Statement("jr", ["lr"], line_no, raw, 1)
        if mnemonic == "mov":
            return _Statement("addi", args + ["0"], line_no, raw, 1)
        return _Statement(mnemonic, args, line_no, raw, 1)

    # -- pass 2: encode ---------------------------------------------------

    def _resolve(self, token: str, symbols: Dict[str, int],
                 stmt: _Statement) -> int:
        """Label address or literal integer."""
        if token in symbols:
            return symbols[token]
        try:
            return parse_int(token)
        except ValueError:
            raise AsmError(f"undefined symbol {token!r}", stmt.line_no, stmt.line)

    def _branch_offset(self, token: str, symbols: Dict[str, int],
                       stmt: _Statement) -> int:
        """PC-relative word offset to a label (relative to pc + 4)."""
        target = self._resolve(token, symbols, stmt)
        delta = target - (stmt.address + WORD)
        if delta % WORD:
            raise AsmError(f"misaligned target {token!r}", stmt.line_no, stmt.line)
        return delta // WORD

    def _emit(self, stmt: _Statement, symbols: Dict[str, int]) -> List[int]:
        try:
            return self._emit_inner(stmt, symbols)
        except (ValueError, IndexError, EncodingError) as exc:
            if isinstance(exc, AsmError):
                raise
            raise AsmError(str(exc), stmt.line_no, stmt.line) from exc

    def _emit_inner(self, stmt: _Statement, symbols: Dict[str, int]) -> List[int]:
        kind, args = stmt.kind, stmt.args
        if kind == ".word":
            return [self._resolve(a, symbols, stmt) & 0xFFFFFFFF for a in args]
        if kind == ".space":
            return [0] * int(args[0])
        if kind == "brr.trap":
            freq = parse_freq(args[0])
            if not 0 <= freq < 16:
                raise ValueError(f"freq field out of range: {freq}")
            target = self._resolve(args[1], symbols, stmt)
            # Offset applied by the trap handler relative to the 8-byte
            # (opcode + offset word) emulated instruction.
            offset = target - (stmt.address + 2 * WORD)
            return [
                (TRAP_BRR_OPCODE << 26) | (freq << 22),
                offset & 0xFFFFFFFF,
            ]
        try:
            op = Op[kind.upper()]
        except KeyError:
            raise ValueError(f"unknown mnemonic {kind!r}")
        fmt = {
            Format.R: self._emit_r,
            Format.I: self._emit_i,
            Format.LI: self._emit_li,
            Format.MEM: self._emit_mem,
            Format.BRANCH: self._emit_branch,
            Format.JUMP: self._emit_jump,
            Format.JR: self._emit_jr,
            Format.BRR: self._emit_brr,
            Format.MARKER: self._emit_marker,
            Format.NONE: self._emit_none,
        }[Instruction(op).format]
        return [encode(fmt(op, args, symbols, stmt))]

    def _emit_r(self, op, args, symbols, stmt) -> Instruction:
        rd, ra, rb = (parse_register(a) for a in args[:3])
        return Instruction(op, rd=rd, ra=ra, rb=rb)

    def _emit_i(self, op, args, symbols, stmt) -> Instruction:
        rd, ra = parse_register(args[0]), parse_register(args[1])
        return Instruction(op, rd=rd, ra=ra,
                           imm=self._resolve(args[2], symbols, stmt))

    def _emit_li(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op, rd=parse_register(args[0]),
                           imm=self._resolve(args[1], symbols, stmt))

    def _emit_mem(self, op, args, symbols, stmt) -> Instruction:
        rd = parse_register(args[0])
        match = _MEM_RE.match(args[1])
        if not match:
            raise ValueError(f"expected offset(base), got {args[1]!r}")
        return Instruction(op, rd=rd, ra=parse_register(match.group(2)),
                           imm=parse_int(match.group(1)))

    def _emit_branch(self, op, args, symbols, stmt) -> Instruction:
        ra, rb = parse_register(args[0]), parse_register(args[1])
        return Instruction(op, ra=ra, rb=rb,
                           imm=self._branch_offset(args[2], symbols, stmt))

    def _emit_jump(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op, imm=self._branch_offset(args[0], symbols, stmt))

    def _emit_jr(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op, ra=parse_register(args[0]))

    def _emit_brr(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op, freq=parse_freq(args[0]),
                           imm=self._branch_offset(args[1], symbols, stmt))

    def _emit_marker(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op, imm=parse_int(args[0]))

    def _emit_none(self, op, args, symbols, stmt) -> Instruction:
        return Instruction(op)


def assemble(source: str, base: int = 0, brr_mode: str = "native") -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    return Assembler(base=base, brr_mode=brr_mode).assemble(source)
