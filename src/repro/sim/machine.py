"""The functional (architectural) simulator.

Executes assembled programs at instruction granularity, maintaining
the 16 general registers, the PC and a flat memory.  Branch-on-random
instructions are resolved by a pluggable
:class:`~repro.core.brr.RandomSource` (the LFSR unit, the
deterministic hardware-counter variant, or — in trap mode — a software
handler registered for the invalid opcode, reproducing the paper's
SIGILL emulation).

``marker`` instructions (the Simics magic-instruction analogue from
Section 5.1) increment per-id counters and fire callbacks, which the
experiment harness uses to delimit warm-up and measurement windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..core.brr import RandomSource
from ..isa.instructions import (
    LINK_REG,
    WORD,
    Instruction,
    InvalidOpcodeError,
    Op,
    decode,
)
from ..isa.program import Program
from .memory import Memory
from .trace import TraceRecord

_MASK = 0xFFFFFFFF


def _signed(value: int) -> int:
    return value - 0x100000000 if value & 0x80000000 else value


class MachineError(Exception):
    """Unrecoverable execution failure (e.g. unhandled trap)."""


class Halted(Exception):
    """Raised when stepping a machine that has already halted."""


#: Signature of an invalid-opcode trap handler: receives the machine,
#: the faulting word and its PC, and returns the next PC.
TrapHandler = Callable[["Machine", int, int], int]

#: Signature of a marker callback.
MarkerCallback = Callable[["Machine", int, int], None]


@dataclass
class MachineCheckpoint:
    """A resumable snapshot of one machine's architectural state.

    Covers everything the ISA architects — registers, PC, memory
    image, halt flag, retired-instruction and marker counters — plus,
    when the attached branch-on-random unit supports the Section 3.4
    scan-chain context interface (``save_context``/``restore_context``),
    the LFSR contents, so a resumed machine takes exactly the branches
    the original would have.  Callbacks and trap handlers are *not*
    state; they stay with whatever machine the checkpoint is restored
    into.
    """

    regs: List[int] = field(default_factory=list)
    pc: int = 0
    halted: bool = False
    instret: int = 0
    marker_counts: Dict[int, int] = field(default_factory=dict)
    memory_bytes: bytes = b""
    brr_context: Optional[int] = None


class Machine:
    """Architectural state plus an interpreter loop."""

    #: Default decode-cache capacity.  Far above any program in the
    #: repo (the biggest JVM images are a few thousand words), so
    #: eviction never fires in practice, but long runs over patched or
    #: generated code can no longer grow the cache without bound.
    DECODE_CACHE_LIMIT = 1 << 16

    def __init__(
        self,
        program: Program,
        memory: Optional[Memory] = None,
        memory_size: int = 1 << 20,
        brr_unit: Optional[RandomSource] = None,
        entry: Optional[str] = None,
        decode_cache_limit: Optional[int] = None,
    ) -> None:
        self.program = program
        self.memory = memory if memory is not None else Memory(memory_size)
        self.memory.load_program(program)
        self.regs: List[int] = [0] * 16
        self.pc = program.address_of(entry) if entry else program.base
        self.halted = False
        self.brr_unit = brr_unit
        #: Retired instruction count (trapped brr counts as one).
        self.instret = 0
        self.marker_counts: Dict[int, int] = {}
        self.marker_callbacks: List[MarkerCallback] = []
        self.trap_handlers: Dict[int, TrapHandler] = {}
        self._decode_cache: Dict[int, Instruction] = {}
        self._decode_cache_limit = max(
            1, self.DECODE_CACHE_LIMIT if decode_cache_limit is None
            else decode_cache_limit)

    # ------------------------------------------------------------------

    def register_trap_handler(self, opcode: int, handler: TrapHandler) -> None:
        """Install a handler for an un-architected opcode value."""
        if not 0 <= opcode < 64:
            raise ValueError(f"opcode value out of range: {opcode}")
        self.trap_handlers[opcode] = handler

    def on_marker(self, callback: MarkerCallback) -> None:
        self.marker_callbacks.append(callback)

    def _decode(self, pc: int) -> Instruction:
        cached = self._decode_cache.get(pc)
        if cached is None:
            cached = decode(self.memory.load_word(pc), pc=pc)
            if len(self._decode_cache) >= self._decode_cache_limit:
                # FIFO eviction (dicts preserve insertion order): O(1)
                # and good enough for code, whose working set is tiny
                # next to the limit.
                self._decode_cache.pop(next(iter(self._decode_cache)))
            self._decode_cache[pc] = cached
        return cached

    def invalidate_decode(self, addr: int) -> None:
        """Drop a cached decode after code has been patched in memory."""
        self._decode_cache.pop(addr, None)

    def patch_brr_frequency(self, addr: int, field: int) -> None:
        """Rewrite the freq field of an in-memory ``brr`` instruction.

        This is the code-patching step of convergent profiling
        (Section 7): "it is possible to efficiently implement
        convergent profiling, by modifying the sampling frequency as
        information is collected" — the runtime patches the 4-bit freq
        field of the site's brr instruction in place.
        """
        if not 0 <= field < 16:
            raise ValueError(f"freq field out of range: {field}")
        word = self.memory.load_word(addr)
        instr = decode(word, pc=addr)
        if instr.op is not Op.BRR:
            raise MachineError(
                f"instruction at {addr:#x} is {instr.op.name}, not BRR"
            )
        self.memory.store_word(addr, (word & ~(0xF << 22)) | (field << 22))
        self.invalidate_decode(addr)

    # ------------------------------------------------------------------

    def step(self) -> TraceRecord:
        """Execute one instruction; return its trace record."""
        if self.halted:
            raise Halted("machine has halted")
        pc = self.pc
        try:
            instr = self._decode(pc)
        except InvalidOpcodeError as exc:
            handler = self.trap_handlers.get((exc.word >> 26) & 0x3F)
            if handler is None:
                raise MachineError(
                    f"unhandled invalid opcode at pc={pc:#x}"
                ) from exc
            next_pc = handler(self, exc.word, pc)
            self.pc = next_pc
            self.instret += 1
            return TraceRecord(pc, None, next_pc, taken=next_pc != pc + 2 * WORD)
        regs = self.regs
        op = instr.op
        taken = False
        mem_addr: Optional[int] = None
        next_pc = pc + WORD

        if op is Op.ADD:
            regs[instr.rd] = (regs[instr.ra] + regs[instr.rb]) & _MASK
        elif op is Op.ADDI:
            regs[instr.rd] = (regs[instr.ra] + instr.imm) & _MASK
        elif op is Op.SUB:
            regs[instr.rd] = (regs[instr.ra] - regs[instr.rb]) & _MASK
        elif op is Op.AND:
            regs[instr.rd] = regs[instr.ra] & regs[instr.rb]
        elif op is Op.OR:
            regs[instr.rd] = regs[instr.ra] | regs[instr.rb]
        elif op is Op.XOR:
            regs[instr.rd] = regs[instr.ra] ^ regs[instr.rb]
        elif op is Op.SHL:
            regs[instr.rd] = (regs[instr.ra] << (regs[instr.rb] & 31)) & _MASK
        elif op is Op.SHR:
            regs[instr.rd] = regs[instr.ra] >> (regs[instr.rb] & 31)
        elif op is Op.MUL:
            regs[instr.rd] = (regs[instr.ra] * regs[instr.rb]) & _MASK
        elif op is Op.SLT:
            regs[instr.rd] = int(_signed(regs[instr.ra]) < _signed(regs[instr.rb]))
        elif op is Op.ANDI:
            regs[instr.rd] = regs[instr.ra] & (instr.imm & _MASK)
        elif op is Op.ORI:
            regs[instr.rd] = regs[instr.ra] | (instr.imm & _MASK)
        elif op is Op.XORI:
            regs[instr.rd] = regs[instr.ra] ^ (instr.imm & _MASK)
        elif op is Op.SHLI:
            regs[instr.rd] = (regs[instr.ra] << (instr.imm & 31)) & _MASK
        elif op is Op.SHRI:
            regs[instr.rd] = regs[instr.ra] >> (instr.imm & 31)
        elif op is Op.SLTI:
            regs[instr.rd] = int(_signed(regs[instr.ra]) < instr.imm)
        elif op is Op.LI:
            regs[instr.rd] = instr.imm & _MASK
        elif op is Op.LW:
            mem_addr = (regs[instr.ra] + instr.imm) & _MASK
            regs[instr.rd] = self.memory.load_word(mem_addr)
        elif op is Op.LB:
            mem_addr = (regs[instr.ra] + instr.imm) & _MASK
            regs[instr.rd] = self.memory.load_byte(mem_addr)
        elif op is Op.SW:
            mem_addr = (regs[instr.ra] + instr.imm) & _MASK
            self.memory.store_word(mem_addr, regs[instr.rd])
        elif op is Op.SB:
            mem_addr = (regs[instr.ra] + instr.imm) & _MASK
            self.memory.store_byte(mem_addr, regs[instr.rd])
        elif op is Op.BEQ:
            taken = regs[instr.ra] == regs[instr.rb]
        elif op is Op.BNE:
            taken = regs[instr.ra] != regs[instr.rb]
        elif op is Op.BLT:
            taken = _signed(regs[instr.ra]) < _signed(regs[instr.rb])
        elif op is Op.BGE:
            taken = _signed(regs[instr.ra]) >= _signed(regs[instr.rb])
        elif op is Op.JMP:
            taken = True
        elif op is Op.JAL:
            regs[LINK_REG] = (pc + WORD) & _MASK
            taken = True
        elif op is Op.JR:
            taken = True
            next_pc = regs[instr.ra]
        elif op is Op.BRR:
            if self.brr_unit is None:
                raise MachineError(
                    f"brr at pc={pc:#x} but no branch-on-random unit configured"
                )
            taken = self.brr_unit.resolve(instr.freq)
        elif op is Op.BRRA:
            taken = True
        elif op is Op.MARKER:
            count = self.marker_counts.get(instr.imm, 0) + 1
            self.marker_counts[instr.imm] = count
            for callback in self.marker_callbacks:
                callback(self, instr.imm, count)
        elif op is Op.NOP:
            pass
        elif op is Op.HALT:
            self.halted = True
            next_pc = pc
        else:  # pragma: no cover - every opcode is handled above
            raise MachineError(f"unimplemented opcode {op.name}")

        if taken and op is not Op.JR:
            next_pc = pc + WORD + instr.imm * WORD
        self.pc = next_pc
        self.instret += 1
        return TraceRecord(pc, instr, next_pc, taken, mem_addr)

    # ------------------------------------------------------------------

    def run(self, max_steps: int = 10_000_000) -> int:
        """Run until halt (or the step limit); return steps executed."""
        steps = 0
        while not self.halted and steps < max_steps:
            self.step()
            steps += 1
        if not self.halted and steps >= max_steps:
            raise MachineError(f"did not halt within {max_steps} steps")
        return steps

    def run_trace(self, max_steps: int = 10_000_000) -> Iterator[TraceRecord]:
        """Yield trace records until halt (or the step limit)."""
        steps = 0
        while not self.halted and steps < max_steps:
            yield self.step()
            steps += 1

    def run_until_marker(
        self, marker_id: int, count: int = 1, max_steps: int = 10_000_000
    ) -> int:
        """Run until marker ``marker_id`` has fired ``count`` times in
        total; return steps executed.  Used to fast-forward to the
        measurement window (Section 5.1)."""
        steps = 0
        while not self.halted and steps < max_steps:
            if self.marker_counts.get(marker_id, 0) >= count:
                return steps
            self.step()
            steps += 1
        if self.marker_counts.get(marker_id, 0) >= count:
            return steps
        raise MachineError(
            f"marker {marker_id} did not reach count {count} within "
            f"{max_steps} steps"
        )

    # ------------------------------------------------------------------

    def checkpoint(self) -> MachineCheckpoint:
        """Snapshot the architectural state for later :meth:`restore`.

        The warm-up amortisation primitive of the record/replay
        subsystem (``docs/trace_format.md``): run the expensive
        fast-forward prefix once, checkpoint, and start every
        subsequent functional recording from the snapshot instead of
        from program entry.
        """
        save = getattr(self.brr_unit, "save_context", None)
        return MachineCheckpoint(
            regs=list(self.regs),
            pc=self.pc,
            halted=self.halted,
            instret=self.instret,
            marker_counts=dict(self.marker_counts),
            memory_bytes=self.memory.read_bytes(0, self.memory.size),
            brr_context=save() if callable(save) else None,
        )

    def restore(self, snapshot: MachineCheckpoint) -> None:
        """Reset this machine to a previously captured checkpoint.

        The memory images must be the same size (checkpoints are not a
        relocation mechanism).  The decode cache is dropped because the
        snapshot may contain differently patched code.
        """
        if len(snapshot.memory_bytes) != self.memory.size:
            raise MachineError(
                f"checkpoint memory is {len(snapshot.memory_bytes):#x} "
                f"bytes, machine has {self.memory.size:#x}"
            )
        self.regs = list(snapshot.regs)
        self.pc = snapshot.pc
        self.halted = snapshot.halted
        self.instret = snapshot.instret
        self.marker_counts = dict(snapshot.marker_counts)
        self.memory.write_bytes(0, snapshot.memory_bytes)
        self._decode_cache.clear()
        if snapshot.brr_context is not None:
            restore_context = getattr(self.brr_unit, "restore_context", None)
            if not callable(restore_context):
                raise MachineError(
                    "checkpoint carries branch-on-random context but this "
                    "machine's unit has no restore_context()"
                )
            restore_context(snapshot.brr_context)
