"""Tests for the sampling-payoff analysis and width sensitivity."""

import pytest

from repro.experiments import sampling_payoff_interval, width_sensitivity
from repro.experiments.fig13 import MicrobenchSweep, SweepPoint


def sweep_with(full_overhead, curves):
    """Build a synthetic sweep; curves = {(kind,dup): [(iv, oh)...]}"""
    sweep = MicrobenchSweep(
        n_chars=1, sites=1, base_cycles=1000,
        base_branch_accuracy=0.9, base_l1i_hit_rate=1.0,
        base_l1d_hit_rate=1.0, full_instr_overhead=full_overhead,
        full_instr_cycles_per_site=4.0,
    )
    for (kind, dup), points in curves.items():
        for interval, overhead in points:
            sweep.points.append(SweepPoint(
                kind, dup, interval, True,
                cycles=int(1000 * (1 + overhead / 100)),
                overhead=overhead, cycles_per_site=overhead / 10,
            ))
    return sweep


class TestPayoffInterval:
    def test_first_winning_interval(self):
        sweep = sweep_with(10.0, {
            ("brr", "full-dup"): [(2, 30.0), (8, 12.0), (32, 6.0),
                                  (128, 3.0)],
        })
        assert sampling_payoff_interval(sweep, "brr", "full-dup") == 32

    def test_never_pays_off(self):
        sweep = sweep_with(10.0, {
            ("cbs", "no-dup"): [(2, 50.0), (128, 20.0), (1024, 15.0)],
        })
        assert sampling_payoff_interval(sweep, "cbs", "no-dup") is None

    def test_immediate_payoff(self):
        sweep = sweep_with(40.0, {
            ("brr", "no-dup"): [(2, 30.0), (8, 10.0)],
        })
        assert sampling_payoff_interval(sweep, "brr", "no-dup") == 2

    def test_real_sweep_ordering(self):
        """On the actual microbenchmark, brr pays off at a smaller or
        equal interval than cbs under both layouts."""
        from repro.experiments import microbench_sweep

        sweep = microbench_sweep(n_chars=1500, intervals=(4, 32, 256, 1024))
        for dup in ("no-dup", "full-dup"):
            brr = sampling_payoff_interval(sweep, "brr", dup)
            cbs = sampling_payoff_interval(sweep, "cbs", dup)
            assert brr is not None
            if cbs is not None:
                assert brr <= cbs


class TestWidthSensitivity:
    def test_not_significant(self):
        result = width_sensitivity(benchmark="bloat", seeds=(0, 1),
                                   scale=0.004, widths=(16, 20, 24))
        assert set(result.groups) == {"16-bit", "20-bit", "24-bit"}
        assert not result.significant

    def test_all_widths_produce_usable_profiles(self):
        result = width_sensitivity(benchmark="bloat", seeds=(0, 1),
                                   scale=0.004, widths=(16, 32))
        for values in result.groups.values():
            assert all(v > 30 for v in values)
