"""repro — a full reproduction of *Branch-on-Random* (Lee & Zilles, CGO 2008).

The package implements the proposed branch-on-random instruction and
every substrate the paper's evaluation depends on:

- :mod:`repro.core` — the instruction's hardware model (LFSR, condition
  unit, superscalar decode integration, cost model);
- :mod:`repro.isa` — a small RISC-style instruction set with the
  architected ``brr`` opcode, assembler and disassembler;
- :mod:`repro.sim` — a functional simulator including the SIGILL-style
  trap-emulation path used by the paper for its accuracy experiments;
- :mod:`repro.timing` — a cycle-level out-of-order timing simulator
  configured per Section 5.1 (4-wide, 80-entry ROB, tournament
  predictor, two-level caches);
- :mod:`repro.sampling` — event-level sampling frameworks (software
  counter, hardware counter, branch-on-random, convergent);
- :mod:`repro.instrument` — CFG IR and the Arnold-Ryder
  No-Duplication / Full-Duplication transformations;
- :mod:`repro.jvm` — a mini JVM substrate with a baseline compiler;
- :mod:`repro.workloads` — DaCapo-like synthetic workloads and the
  Section 5.3 checksum microbenchmark;
- :mod:`repro.profiles` — profiles and the overlap-accuracy metric;
- :mod:`repro.experiments` — one runner per paper table/figure;
- :mod:`repro.analysis` — statistics and overhead decomposition.
"""

__version__ = "1.0.0"

from . import (
    analysis,
    core,
    experiments,
    instrument,
    isa,
    jvm,
    profiles,
    sampling,
    sim,
    timing,
    workloads,
)

__all__ = [
    "analysis",
    "core",
    "experiments",
    "instrument",
    "isa",
    "jvm",
    "profiles",
    "sampling",
    "sim",
    "timing",
    "workloads",
    "__version__",
]
