"""Corruption fuzz suite for the end-to-end integrity layer.

Seeded byte-flips and truncations are injected into every kind of
on-disk state the engine trusts — recorded traces, result-cache
entries, JSONL run ledgers — and the tests assert the full contract of
``docs/integrity.md``: corruption is *detected* (checksums), *moved
aside* (quarantine + machine-readable reason file), *healed*
(transparent re-record / recompute under the default ``repair``
policy) and *harmless* (the final payloads are byte-identical to a
clean run).  The runtime half of the layer — the ``REPRO_VALIDATE``
watchdog that cross-checks the fast timing kernel against the golden
model — is driven through a deliberate perturbation seam.
"""

import dataclasses
import json
import pathlib

import pytest

from repro.cli import main
from repro.engine import (
    EngineConfig,
    ExperimentEngine,
    IntegrityError,
    ResultCache,
    RunRecorder,
    TraceStore,
    ValidationDivergence,
    ValidationSettings,
    corrupt_file,
    quarantined_entries,
    read_run_log_checked,
    run_doctor,
    scan_ledger,
    validation_override,
)
from repro.engine.integrity import (
    REASON_SUFFIX,
    compare_stats,
    ledger_line_crc,
    take_validation_ticket,
)
from repro.engine.windows import MATERIALS
from repro.experiments.fig13 import microbench_window_spec
from repro.timing import fastpath
from repro.timing.runner import (
    consume_replay_info,
    record_window,
    replay_window,
)


def _specs():
    """A cheap pair of timed windows (shared trace, two variants)."""
    return [
        microbench_window_spec(400, "full-dup", seed=1, kind="brr",
                               interval=64, lfsr_seed=64),
        microbench_window_spec(400, "none", seed=1),
    ]


def _canonical(payloads):
    return [json.dumps(p, sort_keys=True) for p in payloads]


def _engine(root, **config):
    cfg = EngineConfig(**config)
    # Injected collaborators carry their own policy (the CLI does the
    # same) — the engine only applies cfg.integrity to default stores.
    return ExperimentEngine(config=cfg,
                            cache=ResultCache(root, policy=cfg.integrity))


def _engine_with_traces(cache_root, trace_root, **config):
    """Fresh result cache + existing trace store: forces windows to
    re-execute so the trace path is actually exercised."""
    cfg = EngineConfig(**config)
    return ExperimentEngine(
        config=cfg,
        cache=ResultCache(cache_root, policy=cfg.integrity),
        trace_store=TraceStore(trace_root, policy=cfg.integrity))


def _store_files(root, pattern):
    return sorted(p for p in pathlib.Path(root).rglob(pattern)
                  if "quarantine" not in p.parts)


# ----------------------------------------------------------------------
# Deterministic corruption injection (repro.engine.faults).


class TestCorruptFile:
    def test_flip_is_deterministic_and_changes_one_byte(self, tmp_path):
        a = tmp_path / "a.bin"
        a.write_bytes(bytes(range(200)))
        offset = corrupt_file(a, seed=3, kind="flip")
        damaged = a.read_bytes()
        assert len(damaged) == 200
        assert damaged[offset] != offset
        assert sum(x != y for x, y in zip(damaged, bytes(range(200)))) == 1
        # Same seed, same file name: same offset.
        b = tmp_path / "b" / "a.bin"
        b.parent.mkdir()
        b.write_bytes(bytes(range(200)))
        assert corrupt_file(b, seed=3, kind="flip") == offset

    def test_truncate_drops_at_least_one_byte(self, tmp_path):
        target = tmp_path / "t.bin"
        target.write_bytes(b"x" * 100)
        corrupt_file(target, seed=0, kind="truncate")
        assert 0 <= len(target.read_bytes()) < 100

    def test_empty_file_and_bad_kind_rejected(self, tmp_path):
        empty = tmp_path / "e.bin"
        empty.write_bytes(b"")
        with pytest.raises(ValueError):
            corrupt_file(empty, seed=0)
        empty.write_bytes(b"x")
        with pytest.raises(ValueError):
            corrupt_file(empty, seed=0, kind="zero")


# ----------------------------------------------------------------------
# Result-cache corruption: detect, quarantine, self-heal.


class TestCacheCorruption:
    def _poison_payload(self, path):
        """Damage the *payload* (not the envelope) so the entry stays
        parseable but its embedded digest no longer matches."""
        entry = json.loads(path.read_text())
        entry["result"]["cycles"] = (entry["result"].get("cycles") or 0) + 1
        path.write_text(json.dumps(entry, sort_keys=True))

    def test_repair_quarantines_and_recomputes_identically(self, tmp_path):
        specs = _specs()
        clean = _engine(tmp_path / "clean").run(specs)

        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(specs)
        entries = _store_files(root, "*.json")
        assert entries
        for path in entries:
            self._poison_payload(path)

        healed = _engine(root)
        payloads = healed.run(specs)
        assert _canonical(payloads) == _canonical(clean)
        # Every poisoned entry was moved aside with a reason file, and
        # the recompute counted as a repair.
        quarantined = quarantined_entries(root)
        assert len(quarantined) == len(entries)
        for q in quarantined:
            reason = json.loads(
                (q.parent / (q.name + REASON_SUFFIX)).read_text())
            assert reason["store"] == "results"
            assert "digest" in reason["reason"]
        assert healed.cache.integrity.quarantined == len(entries)
        assert healed.cache.integrity.repaired == len(entries)
        # The healed entries verify again on the next run.
        again = _engine(root)
        assert _canonical(again.run(specs)) == _canonical(clean)
        assert again.cache.integrity.verified == len(specs)

    def test_verify_policy_raises(self, tmp_path):
        specs = _specs()[:1]
        root = tmp_path / "victim"
        _engine(root).run(specs)
        for path in _store_files(root, "*.json"):
            self._poison_payload(path)
        strict = _engine(root, integrity="verify")
        with pytest.raises(IntegrityError, match="corrupt"):
            strict.run(specs)
        assert quarantined_entries(root)

    def test_trust_policy_skips_digest_check(self, tmp_path):
        specs = _specs()[:1]
        root = tmp_path / "victim"
        clean = _engine(root).run(specs)
        for path in _store_files(root, "*.json"):
            self._poison_payload(path)
        trusting = _engine(root, integrity="trust")
        payloads = trusting.run(specs)
        # The poisoned payload is served as-is: trust means trust.
        assert _canonical(payloads) != _canonical(clean)
        assert not quarantined_entries(root)

    def test_seeded_bitflips_never_change_final_payloads(self, tmp_path):
        specs = _specs()
        clean = _engine(tmp_path / "clean").run(specs)
        for seed in range(4):
            root = tmp_path / f"victim{seed}"
            _engine(root).run(specs)
            for i, path in enumerate(_store_files(root, "*.json")):
                corrupt_file(path, seed=seed + i,
                             kind="flip" if seed % 2 else "truncate")
            healed = _engine(root).run(specs)
            assert _canonical(healed) == _canonical(clean)


# ----------------------------------------------------------------------
# Trace-store corruption: every byte of a BRTR v2 file is covered by a
# section checksum, so *any* flip is detected.


class TestTraceCorruption:
    def test_flip_anywhere_quarantines_and_rerecords(self, tmp_path):
        specs = _specs()
        clean = _engine(tmp_path / "clean").run(specs)

        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(specs)
        traces = _store_files(warm.trace_store.root, "*.trace")
        assert traces
        for i, path in enumerate(traces):
            corrupt_file(path, seed=i, kind="flip")

        healed = _engine_with_traces(tmp_path / "fresh",
                                     warm.trace_store.root)
        payloads = healed.run(specs)
        assert _canonical(payloads) == _canonical(clean)
        quarantined = quarantined_entries(healed.trace_store.root)
        assert quarantined
        reasons = [json.loads((q.parent / (q.name + REASON_SUFFIX))
                              .read_text()) for q in quarantined]
        assert all(r["store"] == "traces" for r in reasons)
        assert healed.trace_store.integrity.quarantined == len(quarantined)
        assert healed.trace_store.integrity.repaired == len(quarantined)
        # Re-recorded traces are intact.
        again = _engine_with_traces(tmp_path / "fresh2",
                                    warm.trace_store.root)
        assert _canonical(again.run(specs)) == _canonical(clean)
        assert again.trace_store.integrity.quarantined == 0

    def test_truncation_is_detected(self, tmp_path):
        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(_specs()[:1])
        store = TraceStore(warm.trace_store.root, policy="verify")
        (path,) = _store_files(store.root, "*.trace")
        key = path.stem
        corrupt_file(path, seed=0, kind="truncate")
        with pytest.raises(IntegrityError, match="quarantined"):
            store.load(key)
        assert not path.exists()

    def test_lru_does_not_serve_stale_handle_after_prune(self, tmp_path):
        """Satellite: the 4-entry handle cache must be invalidated by
        prune/quarantine, or it would keep serving deleted traces."""
        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(_specs()[:1])
        store = warm.trace_store
        (path,) = _store_files(store.root, "*.trace")
        key = path.stem
        assert store.load(key) is not None   # now in the handle cache
        path.unlink()
        assert store.load(key) is not None   # masked by the LRU (docs'd)
        store.prune()
        assert store.load(key) is None       # prune invalidated it

    def test_quarantine_invalidates_open_handle(self, tmp_path):
        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(_specs()[:1])
        store = warm.trace_store
        (path,) = _store_files(store.root, "*.trace")
        key = path.stem
        assert store.load(key) is not None
        corrupt_file(path, seed=1, kind="flip")
        report = store.scan(repair=True)
        assert report["corrupt"] == 1
        # scan quarantined the file *and* dropped the live handle.
        assert store.load(key) is None


# ----------------------------------------------------------------------
# Ledger corruption: per-line CRCs separate torn tails from bit rot.


class TestLedgerIntegrity:
    def _ledger(self, tmp_path):
        log = tmp_path / "run.jsonl"
        recorder = RunRecorder(log)
        recorder.write_meta({"command": "x", "argv": ["x"]})
        for i in range(4):
            recorder.write_validation({"i": i})  # any crc'd line works
        return log

    def test_lines_carry_matching_crc(self, tmp_path):
        log = self._ledger(tmp_path)
        for line in log.read_text().splitlines():
            obj = json.loads(line)
            assert obj["crc"] == ledger_line_crc(obj)

    def test_bitrot_line_is_skipped_and_reported(self, tmp_path):
        log = self._ledger(tmp_path)
        lines = log.read_text().splitlines()
        lines[2] = lines[2].replace('"i":', '"j":', 1)  # parseable rot
        log.write_text("\n".join(lines) + "\n")
        meta, _records, report = read_run_log_checked(log)
        assert meta is not None
        assert report.corrupt == 1
        assert report.ok == len(lines) - 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        log = self._ledger(tmp_path)
        text = log.read_text()
        log.write_text(text[:-15])  # kill mid-line
        meta, _records, report = read_run_log_checked(log)
        assert meta is not None
        assert report.torn == 1
        assert report.corrupt == 0

    def test_scan_ledger_repair_rewrites_in_place(self, tmp_path):
        log = self._ledger(tmp_path)
        lines = log.read_text().splitlines()
        lines[1] = lines[1].replace('"i":', '"j":', 1)
        log.write_text("\n".join(lines)[:-10])  # rot + torn tail
        report = scan_ledger(log, repair=True)
        assert report.bad == 2
        after = scan_ledger(log)
        assert after.bad == 0
        assert after.ok == len(lines) - 2

    def test_legacy_crcless_lines_stay_readable(self, tmp_path):
        log = tmp_path / "legacy.jsonl"
        log.write_text('{"record_type": "run_meta", "argv": ["x"], '
                       '"command": "x"}\n{"key": "k", "cache": "hit"}\n')
        meta, records, report = read_run_log_checked(log)
        assert meta is not None
        assert len(records) == 1
        assert report.legacy == 2
        assert report.bad == 0


class TestResumeTruncatedLedger:
    """Satellite regression: `repro resume` on a ledger whose final
    line was torn by a kill must resume from the last complete line."""

    def _run_with_log(self, tmp_path):
        cache = tmp_path / "cache"
        log = tmp_path / "run.jsonl"
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", str(cache),
                     "--log-jsonl", str(log)]) == 0
        return cache, log

    def test_resume_from_last_complete_line(self, capsys, tmp_path):
        cache, log = self._run_with_log(tmp_path)
        capsys.readouterr()
        text = log.read_text()
        assert text.endswith("\n")
        log.write_text(text[:-20])  # torn final record
        assert main(["resume", str(log)]) == 0
        err = capsys.readouterr().err
        assert "ignored 1 torn and 0 corrupt line(s)" in err
        assert "windows already cached" in err
        # The torn window's result was still durably cached (put is
        # fsync-before-rename), so nothing re-executes.
        assert ", 0 executed" in err

    def test_resume_warns_on_bitrot_and_reexecutes(self, capsys, tmp_path):
        cache, log = self._run_with_log(tmp_path)
        capsys.readouterr()
        lines = log.read_text().splitlines()
        rotted = json.loads(lines[-1])["key"]
        lines[-1] = lines[-1].replace('"cache": "miss"', '"cache": "hitX"')
        log.write_text("\n".join(lines) + "\n")
        # Drop the rotted window from the cache: its ledger line can no
        # longer vouch for it, so resume must re-execute it.
        dropped = [p for p in pathlib.Path(cache).rglob("*.json")
                   if rotted in p.name]
        assert dropped
        dropped[0].unlink()
        assert main(["resume", str(log)]) == 0
        err = capsys.readouterr().err
        assert "ignored 0 torn and 1 corrupt line(s)" in err
        assert ", 1 executed" in err


# ----------------------------------------------------------------------
# The validation watchdog.


def _record_one():
    spec = _specs()[0]
    materials = MATERIALS[spec.kind](spec.params_dict())
    trace = record_window(materials["program"], materials["end"],
                          brr_unit=materials["brr_unit"],
                          setup=materials["setup"])
    return materials, trace


def _replay(materials, trace, fast=True):
    return replay_window(trace, materials["begin"], materials["end"],
                         program=materials["program"], fast=fast)


def _perturb(stats):
    return dataclasses.replace(stats, cycles=stats.cycles + 7)


class TestWatchdog:
    def test_ticket_cadence(self):
        with validation_override(ValidationSettings(every=3)):
            assert [take_validation_ticket() for _ in range(6)] == \
                [False, False, True, False, False, True]
        with validation_override(ValidationSettings(every=None)):
            assert not any(take_validation_ticket() for _ in range(4))

    def test_real_windows_report_zero_divergences(self, tmp_path):
        """Acceptance: REPRO_VALIDATE=1 on real windows — every fast
        replay matches the golden model (policy `raise` would abort
        on the first divergence)."""
        engine = _engine(tmp_path / "c", validate_every=1,
                         validate_policy="raise")
        engine.run(_specs())
        summary = engine.summary()
        assert summary["validation_passes"] == summary["fastpath_windows"]
        assert summary["validation_passes"] > 0
        assert summary["validation_divergences"] == 0

    def test_perturbed_fastpath_falls_back_to_golden(self):
        materials, trace = _record_one()
        golden = _replay(materials, trace, fast=False)
        with validation_override(ValidationSettings(every=1,
                                                    policy="fallback")):
            with fastpath.stats_tap(_perturb):
                result = _replay(materials, trace)
        info = consume_replay_info()
        assert info["validation"] == "divergence"
        assert info["validation_mismatches"] == [
            {"field": "cycles", "fast": golden.stats.cycles + 7,
             "golden": golden.stats.cycles}]
        assert result.stats == golden.stats  # the fallback

    def test_warn_policy_keeps_fast_stats(self):
        materials, trace = _record_one()
        golden = _replay(materials, trace, fast=False)
        with validation_override(ValidationSettings(every=1, policy="warn")):
            with fastpath.stats_tap(_perturb):
                result = _replay(materials, trace)
        assert consume_replay_info()["validation"] == "divergence"
        assert result.stats.cycles == golden.stats.cycles + 7

    def test_raise_policy_aborts(self):
        materials, trace = _record_one()
        with validation_override(ValidationSettings(every=1, policy="raise")):
            with fastpath.stats_tap(_perturb):
                with pytest.raises(ValidationDivergence, match="cycles"):
                    _replay(materials, trace)

    def test_unsampled_replays_carry_no_validation(self):
        materials, trace = _record_one()
        with validation_override(ValidationSettings(every=None)):
            _replay(materials, trace)
        assert "validation" not in consume_replay_info()

    def test_compare_stats_lists_only_diverging_fields(self):
        materials, trace = _record_one()
        stats = _replay(materials, trace, fast=False).stats
        assert compare_stats(stats, stats) == []
        mismatches = compare_stats(stats, _perturb(stats))
        assert [m["field"] for m in mismatches] == ["cycles"]

    def test_engine_logs_typed_divergence_record(self, tmp_path):
        """A divergence surfaces in the run ledger twice: as the
        window's `validation` field and as a typed evidence line."""
        log = tmp_path / "run.jsonl"
        engine = ExperimentEngine(
            config=EngineConfig(validate_every=1, validate_policy="warn"),
            cache=ResultCache(tmp_path / "c"),
            recorder=RunRecorder(log))
        with fastpath.stats_tap(_perturb):
            engine.run(_specs())
        summary = engine.summary()
        assert summary["validation_divergences"] > 0
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        evidence = [l for l in lines
                    if l.get("record_type") == "validation"]
        assert evidence
        assert evidence[0]["mismatches"][0]["field"] == "cycles"
        assert evidence[0]["policy"] == "warn"
        windows = [l for l in lines if l.get("validation") == "divergence"]
        assert len(windows) == summary["validation_divergences"]


# ----------------------------------------------------------------------
# `repro doctor`.


class TestDoctor:
    def _corrupt_everything(self, tmp_path):
        specs = _specs()
        root = tmp_path / "victim"
        warm = _engine(root)
        warm.run(specs)
        for path in _store_files(root, "*.json"):
            entry = json.loads(path.read_text())
            entry["result"]["poison"] = True
            path.write_text(json.dumps(entry, sort_keys=True))
        for i, path in enumerate(_store_files(warm.trace_store.root,
                                              "*.trace")):
            corrupt_file(path, seed=i)
        return root, warm

    def test_scan_reports_without_touching(self, tmp_path):
        root, warm = self._corrupt_everything(tmp_path)
        fresh = _engine(root)
        report = run_doctor(fresh.cache, fresh.trace_store)
        assert not report["clean"]
        assert report["results"]["corrupt"] > 0
        assert report["traces"]["corrupt"] > 0
        assert not quarantined_entries(root)  # report-only

    def test_repair_then_clean(self, tmp_path):
        root, warm = self._corrupt_everything(tmp_path)
        fresh = _engine(root)
        report = run_doctor(fresh.cache, fresh.trace_store, repair=True)
        assert not report["clean"]
        assert quarantined_entries(root)
        # Everything corrupt was moved aside: a second scan is clean.
        after = run_doctor(fresh.cache, fresh.trace_store)
        assert after["clean"]

    def test_cli_exit_codes(self, capsys, tmp_path):
        root, warm = self._corrupt_everything(tmp_path)
        assert main(["doctor", "--cache-dir", str(root)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        assert main(["doctor", "--cache-dir", str(root), "--repair"]) == 0
        assert "repaired" in capsys.readouterr().out
        assert main(["doctor", "--cache-dir", str(root)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_cli_audits_ledger_and_json_document(self, capsys, tmp_path):
        root = tmp_path / "cache"
        log = tmp_path / "run.jsonl"
        recorder = RunRecorder(log)
        recorder.write_meta({"command": "x", "argv": ["x"]})
        log.write_text(log.read_text() + '{"half": ')
        assert main(["doctor", str(log), "--cache-dir", str(root),
                     "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ledgers"][0]["torn"] == 1
        assert doc["corrupt"] == 1
        assert not doc["clean"]

    def test_api_facade(self, tmp_path):
        from repro import api

        engine = _engine(tmp_path / "c")
        result = api.run_doctor(engine=engine)
        assert result.data["clean"]
        assert "doctor: 0 problem(s)" in result.text


# ----------------------------------------------------------------------
# Telemetry: `repro cache stats` surfaces the health counters.


class TestIntegrityTelemetry:
    def test_cache_stats_reports_counters(self, capsys, tmp_path):
        root = tmp_path / "cache"
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", str(root)]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(root),
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        for store in ("results", "traces"):
            assert doc[store]["policy"] == "repair"
            assert doc[store]["quarantined"] == 0
            assert set(doc[store]["integrity"]) == {
                "verified", "repaired", "quarantined"}

    def test_engine_summary_reports_counters(self, tmp_path):
        engine = _engine(tmp_path / "c")
        engine.run(_specs()[:1])
        integrity = engine.summary()["integrity"]
        assert set(integrity) == {"results", "traces"}
        assert integrity["results"]["quarantined"] == 0

    def test_prune_leaves_zero_quarantine(self, tmp_path):
        specs = _specs()
        root = tmp_path / "victim"
        _engine(root).run(specs)
        for i, path in enumerate(_store_files(root, "*.json")):
            corrupt_file(path, seed=i, kind="truncate")
        healed = _engine(root)
        healed.run(specs)  # re-records over the quarantined entries
        assert quarantined_entries(root)
        healed.cache.prune()
        healed.trace_store.prune()
        assert not quarantined_entries(root)
        assert not quarantined_entries(healed.trace_store.root)
        assert not (pathlib.Path(root) / "quarantine").exists()
