"""Golden tests: record/replay is byte-identical to lock-step.

The record-once / replay-many subsystem must be invisible in the
results — for every scorecard/figure window, the timing stats obtained
by replaying a recorded functional trace must match the lock-step
reference path bit for bit.  These tests pin that property at the
timing layer (direct record/replay), at the engine layer (trace store
hit/miss), and for the warm-trace sensitivity sweep's functional-step
accounting (the >= 5x acceptance criterion).
"""

import json

import pytest

from repro.engine import (
    EngineConfig,
    ExperimentEngine,
    ResultCache,
    RunRecorder,
    TraceStore,
)
from repro.engine.tracestore import (
    active_store,
    consume_trace_info,
    functional_key,
)
from repro.engine.windows import run_window
from repro.experiments.fig12 import jvm_window_spec
from repro.experiments.fig13 import COMBOS, microbench_window_spec
from repro.jvm.benchmarks import FIGURE12_BENCHMARKS


def _canonical(payload):
    return json.dumps(payload, sort_keys=True)


def _run(spec, store):
    with active_store(store):
        payload = run_window(spec.kind, spec.params_dict())
        info = consume_trace_info()
    return payload, info


#: Every timed window the scorecard grades: the 15 Figure 12 cells
#: (5 mini-JVM benchmarks x none/cbs/brr) at full scale and the four
#: Figure 13/14 framework combinations at the per-site-gap interval.
SCORECARD_WINDOWS = [
    jvm_window_spec(name, variant, scale=1.0)
    for name in FIGURE12_BENCHMARKS
    for variant in ("none", "cbs", "brr")
] + [
    microbench_window_spec(600, duplication, seed=0, kind=kind,
                           interval=1024)
    for kind, duplication in COMBOS
]


class TestGoldenReplay:
    @pytest.mark.parametrize(
        "spec", SCORECARD_WINDOWS,
        ids=[spec.label() for spec in SCORECARD_WINDOWS])
    def test_replay_matches_lockstep(self, spec, tmp_path):
        store = TraceStore(tmp_path / "traces", enabled=True)
        lockstep, off_info = _run(spec, None)
        recorded, miss_info = _run(spec, store)
        replayed, hit_info = _run(spec, store)

        assert _canonical(recorded) == _canonical(lockstep)
        assert _canonical(replayed) == _canonical(lockstep)

        assert off_info["trace"] == "off"
        assert miss_info["trace"] == "miss"
        assert hit_info["trace"] == "hit"
        # Lock-step pays the window's steps; recording pays the whole
        # stream (entry to end marker); a warm replay pays nothing.
        assert off_info["functional_steps"] \
            == lockstep["result"]["total_steps"]
        assert miss_info["functional_steps"] \
            >= off_info["functional_steps"]
        assert hit_info["functional_steps"] == 0
        assert hit_info["trace_bytes"] == miss_info["trace_bytes"] > 0


class TestTraceStore:
    def test_functional_key_ignores_config(self):
        from repro.timing.config import NAIVE_BRR_CONFIG

        paper = jvm_window_spec("mandel", "brr", scale=0.5)
        naive = jvm_window_spec("mandel", "brr", scale=0.5,
                                config=NAIVE_BRR_CONFIG)
        assert paper.cache_key != naive.cache_key
        assert functional_key(paper.kind, paper.params_dict()) \
            == functional_key(naive.kind, naive.params_dict())

    def test_functional_key_separates_functional_params(self):
        a = jvm_window_spec("mandel", "brr", scale=0.5)
        b = jvm_window_spec("mandel", "brr", scale=0.6)
        assert functional_key(a.kind, a.params_dict()) \
            != functional_key(b.kind, b.params_dict())

    def test_corrupt_entry_is_a_miss_and_rerecorded(self, tmp_path):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="brr",
                                      interval=256)
        store = TraceStore(tmp_path, enabled=True)
        reference, _ = _run(spec, None)
        _run(spec, store)
        key = functional_key(spec.kind, spec.params_dict())
        path = store._path(key)
        assert path.is_file()
        path.write_bytes(b"garbage that is long enough to not be tiny")
        # The writing store still holds a valid in-memory handle; a
        # fresh store (a new process) must observe the corruption.
        payload, info = _run(spec, store)
        assert info["trace"] == "hit"  # handle cache masks the bad file
        assert _canonical(payload) == _canonical(reference)
        store = TraceStore(tmp_path, enabled=True)
        payload, info = _run(spec, store)
        assert info["trace"] == "miss"  # corrupt entry dropped, re-recorded
        assert _canonical(payload) == _canonical(reference)
        payload, info = _run(spec, store)
        assert info["trace"] == "hit"

    def test_disabled_store_records_in_memory(self, tmp_path):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="cbs",
                                      interval=256)
        store = TraceStore(tmp_path, enabled=False)
        reference, _ = _run(spec, None)
        payload, info = _run(spec, None)
        assert info["trace"] == "off"
        assert _canonical(payload) == _canonical(reference)
        assert not any(tmp_path.iterdir())

    def test_stats_prune_clear(self, tmp_path):
        spec = microbench_window_spec(300, "full-dup", seed=0, kind="brr",
                                      interval=256)
        store = TraceStore(tmp_path, enabled=True)
        _run(spec, store)
        stats = store.stats()
        assert stats["entries"] == 1 and stats["bytes"] > 0

        stale = tmp_path / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / "old.trace").write_bytes(b"stale")
        assert store.prune() == 1
        assert store.stats()["entries"] == 1  # current version untouched
        assert store.clear() == 1
        assert store.stats()["entries"] == 0


class TestSweepAccounting:
    """Acceptance criterion: a warm-trace sweep pays >= 5x fewer
    functional Machine.step() calls than per-config re-execution,
    and the accounting lands in the JSONL artifact."""

    def _engine(self, tmp_path, name):
        return ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / f"cache-{name}", enabled=False),
            recorder=RunRecorder(tmp_path / f"{name}.jsonl"),
            trace_store=TraceStore(tmp_path / "traces", enabled=True),
        )

    def test_sweep_records_once_and_replays(self, tmp_path):
        from repro.experiments import timing_config_sweep

        engine = self._engine(tmp_path, "cold")
        result = timing_config_sweep(n_chars=300, engine=engine)
        n_configs = len(result.configs)
        assert n_configs >= 6
        # One recording serves every configuration.
        assert result.lockstep_steps \
            >= n_configs * min(row["total_steps"]
                               for row in result.configs.values())
        assert result.step_reduction >= 5.0

        # The same numbers are in the JSONL artifact, deterministically.
        lines = [json.loads(line) for line in
                 (tmp_path / "cold.jsonl").read_text().splitlines()]
        assert len(lines) == n_configs
        assert sum(1 for l in lines if l["trace"] == "miss") == 1
        assert sum(1 for l in lines if l["trace"] == "hit") == n_configs - 1
        assert sum(l["functional_steps"] for l in lines) \
            == result.functional_steps
        summary = engine.summary()
        assert summary["trace_misses"] == 1
        assert summary["trace_hits"] == n_configs - 1

    def test_warm_sweep_pays_zero_functional_steps(self, tmp_path):
        from repro.experiments import timing_config_sweep

        cold = timing_config_sweep(n_chars=300,
                                   engine=self._engine(tmp_path, "cold"))
        warm = timing_config_sweep(n_chars=300,
                                   engine=self._engine(tmp_path, "warm"))
        assert warm.configs == cold.configs
        assert warm.functional_steps == 0
        assert warm.step_reduction == float("inf")
        assert warm.to_dict()["step_reduction"] is None

    def test_sweep_identical_with_store_disabled(self, tmp_path):
        from repro.experiments import timing_config_sweep

        engine_off = ExperimentEngine(
            config=EngineConfig(jobs=1),
            cache=ResultCache(tmp_path / "cache-off", enabled=False),
            trace_store=TraceStore(tmp_path / "traces-off", enabled=False),
        )
        off = timing_config_sweep(n_chars=300, engine=engine_off)
        on = timing_config_sweep(n_chars=300,
                                 engine=self._engine(tmp_path, "on"))
        assert on.configs == off.configs
        # Lock-step pays the full bill per configuration.
        assert off.functional_steps == off.lockstep_steps


class TestFastForwardReplay:
    def test_fast_forward_window_matches_lockstep(self):
        from repro.isa.asm import assemble
        from repro.timing.runner import (
            record_window,
            replay_window,
            time_window,
        )

        source = """
            li r3, 500
        pre:
            addi r3, r3, -1
            bne r3, r0, pre
            marker 1
            li r3, 100
        warm:
            addi r3, r3, -1
            bne r3, r0, warm
            marker 2
            li r1, 50
        win:
            addi r1, r1, -1
            bne r1, r0, win
            marker 3
            halt
        """
        program = assemble(source)
        lockstep = time_window(program, begin=(2, 1), end=(3, 1),
                               fast_forward=(1, 1))
        trace = record_window(program, end=(3, 1))
        replayed = replay_window(trace, begin=(2, 1), end=(3, 1),
                                 fast_forward=(1, 1), program=program)
        assert replayed.to_dict() == lockstep.to_dict()

    def test_out_of_order_window_points_rejected(self):
        from repro.isa.asm import assemble
        from repro.sim.trace_io import TraceFormatError
        from repro.timing.runner import record_window, replay_window

        program = assemble("marker 1\nnop\nmarker 2\nhalt")
        trace = record_window(program, end=(2, 1))
        with pytest.raises(TraceFormatError, match="out of order"):
            replay_window(trace, begin=(2, 1), end=(1, 1), program=program)

    def test_prewarm_requires_program(self):
        from repro.isa.asm import assemble
        from repro.timing.runner import record_window, replay_window

        program = assemble("marker 1\nnop\nmarker 2\nhalt")
        trace = record_window(program, end=(2, 1))
        with pytest.raises(ValueError, match="program"):
            replay_window(trace, begin=(1, 1), end=(2, 1))
        replay_window(trace, begin=(1, 1), end=(2, 1), prewarm_code=False)
