"""The adversarial workload generator (``repro.workloads.adversarial``).

Covers the generator's three contracts: determinism (equal specs give
byte-identical programs, pools and timing stats — across *processes*,
since the fuzz harness and CI rely on replayable seeds), the
encoding-independent functional oracle (native vs. trap-emulated
``brr``), and the shrinkable block representation (any block subset
still assembles and halts).
"""

import json
import os
import pathlib
import subprocess
import sys

import pytest

import repro
from repro.workloads.adversarial import (
    END_MARKER,
    MEASURE_MARKER,
    START_MARKER,
    AdversarialSpec,
    build_adversarial,
)

_SRC = str(pathlib.Path(repro.__file__).resolve().parents[1])

#: Emits one canonical JSON line fully describing a build + timed run.
_DETERMINISM_SCRIPT = """\
import json
from repro.workloads.adversarial import build_adversarial
from repro.fuzz.harness import STRESS_CONFIG
from repro.timing.runner import time_window

adv = build_adversarial(scheme="mixed", seed=7, blocks=10, call_depth=2)
result = time_window(adv.program(), begin=(2, 1), end=(3, 1),
                     config=STRESS_CONFIG, brr_unit=adv.brr_unit(),
                     setup=adv.setup)
print(json.dumps({"words": list(adv.program().words),
                  "pool": adv.pool.hex(),
                  "stats": result.stats.to_dict()}, sort_keys=True))
"""


class TestDeterminism:
    def test_equal_specs_build_identical_programs(self):
        first = build_adversarial(scheme="mixed", seed=11, blocks=8)
        second = build_adversarial(scheme="mixed", seed=11, blocks=8)
        assert first.source() == second.source()
        assert first.pool == second.pool
        assert list(first.program().words) == list(second.program().words)

    def test_different_seeds_differ(self):
        first = build_adversarial(scheme="mixed", seed=1, blocks=8)
        second = build_adversarial(scheme="mixed", seed=2, blocks=8)
        assert first.source() != second.source() or first.pool != second.pool

    def test_byte_identical_across_two_processes(self):
        env = dict(os.environ, PYTHONPATH=_SRC)
        outputs = [
            subprocess.run([sys.executable, "-c", _DETERMINISM_SCRIPT],
                           capture_output=True, env=env, check=True,
                           text=True).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        document = json.loads(outputs[0])
        assert document["stats"]["instructions"] > 0


class TestSpec:
    def test_density_controls_random_slots(self):
        assert AdversarialSpec(density=0.0).random_slots == 0
        assert AdversarialSpec(density=0.5, stride=8).random_slots == 4
        assert AdversarialSpec(density=1.0, stride=8).random_slots == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            AdversarialSpec(scheme="nope")
        with pytest.raises(ValueError):
            AdversarialSpec(density=1.5)
        with pytest.raises(ValueError):
            AdversarialSpec(loop_shape=())
        with pytest.raises(ValueError):
            AdversarialSpec(pool_bits=100)  # not a power of two
        with pytest.raises(ValueError):
            AdversarialSpec(brr_mix=(1,))

    def test_to_dict_is_json_plain(self):
        data = AdversarialSpec(loop_shape=(2, 3)).to_dict()
        assert data["loop_shape"] == [2, 3]
        json.dumps(data)


class TestFunctionalOracle:
    @pytest.mark.parametrize("scheme", ["cbs", "brr", "mixed"])
    def test_trap_matches_native(self, scheme):
        adversarial = build_adversarial(
            scheme=scheme, seed=5, density=0.5, blocks=10,
            loop_shape=(4,), call_depth=1)
        native = adversarial.run_functional("native")
        trap = adversarial.run_functional("trap")
        assert native.to_dict() == trap.to_dict()

    def test_markers_follow_protocol(self):
        adversarial = build_adversarial(scheme="cbs", seed=0, loop_shape=(3,))
        outcome = adversarial.run_functional("native")
        assert outcome.markers[START_MARKER] == 1
        assert outcome.markers[MEASURE_MARKER] == 1
        assert outcome.markers[END_MARKER] == 1

    def test_brr_scheme_resolves_brr_slots(self):
        adversarial = build_adversarial(
            scheme="brr", seed=0, density=0.5, stride=8, loop_shape=(4,))
        outcome = adversarial.run_functional("native")
        # 4 random slots/iteration x (2 warm groups + 4 iterations).
        assert outcome.brr_resolved == 4 * 6
        assert 0 <= outcome.brr_taken <= outcome.brr_resolved

    def test_cbs_scheme_never_consults_brr(self):
        adversarial = build_adversarial(scheme="cbs", seed=0, density=1.0)
        assert not adversarial.uses_brr
        assert adversarial.run_functional("native").brr_resolved == 0


class TestShrinkableRepresentation:
    def test_any_block_subset_assembles_and_halts(self):
        adversarial = build_adversarial(scheme="mixed", seed=9, blocks=12)
        for keep in (slice(0, 0), slice(0, 1), slice(3, 9), slice(0, None, 2)):
            candidate = adversarial.replace(
                body_blocks=adversarial.body_blocks[keep])
            outcome = candidate.run_functional("native")
            assert outcome.markers[END_MARKER] == 1

    def test_replace_does_not_mutate_original(self):
        adversarial = build_adversarial(scheme="mixed", seed=9, blocks=6)
        before = adversarial.source()
        adversarial.replace(body_blocks=[])
        assert adversarial.source() == before
