"""Functional simulation: memory, the architectural machine, traces
(including the binary record/replay encoding), and the SIGILL-style
branch-on-random trap emulation."""

from .machine import Halted, Machine, MachineCheckpoint, MachineError
from .memory import Memory, MemoryError_
from .trace import TraceRecord
from .trace_io import (
    TRACE_VERSION,
    RecordedTrace,
    TraceFormatError,
    TraceWriter,
    read_trace,
    trace_from_records,
    write_trace,
)
from .threads import ContextScheduler, ThreadContext
from .trap import BrrTrapEmulator

__all__ = [
    "Halted",
    "Machine",
    "MachineCheckpoint",
    "MachineError",
    "Memory",
    "MemoryError_",
    "TraceRecord",
    "TRACE_VERSION",
    "RecordedTrace",
    "TraceFormatError",
    "TraceWriter",
    "read_trace",
    "trace_from_records",
    "write_trace",
    "ContextScheduler",
    "ThreadContext",
    "BrrTrapEmulator",
]
