"""Shared-memory trace pages: zero-copy decoded columns for pool workers.

A recorded trace is decoded into struct-of-arrays columns exactly once
per process (:meth:`repro.sim.trace_io.RecordedTrace.columns`).  Under
the process pool that "once" multiplies: every worker re-reads the
encoded file and pays its own columnar decode.  A *trace page* moves
the decode to the parent: the engine publishes the decoded columns of
each recorded trace into one ``multiprocessing.shared_memory`` segment
and ships the ``{functional key: segment name}`` map with the worker
configuration; workers map the segment and wrap it in a
:class:`SharedTrace` — an API-compatible, read-only stand-in for
:class:`~repro.sim.trace_io.RecordedTrace` whose column buffers are
``memoryview`` casts straight into the shared mapping (no copy, no
decode, no encoded-file read).

Segment layout (little-endian, 8-byte aligned sections)::

    [u64 header length][header JSON][pad]
    [pc: i64 × n][word_id: i64 × n][next_pc: i64 × n][mem_addr: i64 × n]
    [taken: u8 × n][pad][words: i64 × n_words]

The header JSON carries the record count, the marker index, the
encoded trace size (for telemetry parity) and ``n_words``; the word
dictionary travels as raw 32-bit instruction words and is re-decoded
on attach (``decode`` ∘ ``encode`` is exact, and the dictionary is
tiny next to the columns).

Lifecycle — the part that must not leak:

* the **parent** owns every segment through a :class:`TracePageRegistry`
  and is the only unlinker: :meth:`TracePageRegistry.unlink_all` runs
  when the engine's pool shuts down *and* whenever a crashed/hung
  worker forces a pool rebuild (fresh pages are published for the new
  pool).  ``tests/test_engine_faults.py`` leak-checks ``/dev/shm``
  across both paths;
* **workers** only ever attach and close.  Attaching maps the backing
  ``/dev/shm`` file read-only with plain :mod:`mmap` rather than
  ``SharedMemory(name=...)``: the latter would register the segment
  with Python's resource tracker (which the forked workers share with
  the parent, so worker exits would race the parent's unlink) and its
  destructor complains loudly when column views outlive it.  A raw
  mapping involves no tracker and unmaps silently once the last view
  dies.

``REPRO_TRACE_PAGES=0`` disables publication; attach failures of any
kind degrade silently to the normal store path (disk read + local
decode), so pages are strictly an amortisation, never a correctness
dependency.
"""

from __future__ import annotations

import json
import mmap
import os
import secrets
from typing import Dict, Iterator, List, Optional

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - shm-less platform
    _shm = None

from ..isa.instructions import Instruction, decode, encode
from ..sim.trace import TraceRecord
from ..sim.trace_io import RecordedTrace, TraceColumns

#: Segment-name prefix; the leak checks match on it.
PAGE_PREFIX = "rtpg"

_ALIGN = 8


def pages_enabled_by_env() -> bool:
    """``REPRO_TRACE_PAGES`` (default on)."""
    return os.environ.get("REPRO_TRACE_PAGES", "1") not in ("0", "false",
                                                            "no")


def pages_supported() -> bool:
    """Whether this platform can create shared-memory segments."""
    return _shm is not None


def _pad(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedTrace:
    """Read-only :class:`RecordedTrace` stand-in over an attached page.

    Exposes the replay surface — ``marker_step``, ``columns``,
    ``records``, ``n_records``/``len``, ``nbytes`` — with column
    buffers that are views into the shared mapping.  ``close()``
    detaches the mapping; it never unlinks.
    """

    def __init__(self, owner, meta: Dict[str, object],
                 cols: TraceColumns) -> None:
        self._owner = owner  # mmap.mmap or SharedMemory; never unlinked
        self.n_records = int(meta["n_records"])
        self.markers: Dict[int, List[int]] = {
            int(mid): [int(s) for s in steps]
            for mid, steps in meta["markers"].items()}
        self.nbytes = int(meta["nbytes"])
        self.source = None
        self._cols = cols

    def __len__(self) -> int:
        return self.n_records

    def marker_step(self, marker_id: int, count: int) -> int:
        return RecordedTrace.marker_step(self, marker_id, count)

    def columns(self, chunk_records: int = 1 << 15) -> TraceColumns:
        """The shared columns; already decoded, so ``chunk_records``
        is accepted for signature parity and ignored."""
        return self._cols

    def records(self) -> Iterator[TraceRecord]:
        """Reconstruct the per-record object stream from the columns
        (the golden replay path's input)."""
        cols = self._cols
        instrs = cols.instrs
        for i in range(self.n_records):
            word_id = cols.word_id[i]
            mem = cols.mem_addr[i]
            yield TraceRecord(
                cols.pc[i],
                instrs[word_id] if word_id >= 0 else None,
                cols.next_pc[i],
                taken=bool(cols.taken[i]),
                mem_addr=None if mem < 0 else mem,
            )

    def close(self) -> None:
        """Drop the column views and try to unmap.  With views still
        referenced elsewhere the unmap is deferred to their collection
        (a raw ``mmap`` unmaps silently once the last export dies)."""
        self._cols = None
        owner, self._owner = self._owner, None
        if owner is not None:
            try:
                owner.close()
            except (BufferError, OSError):  # pragma: no cover
                pass


def _columns_from_buffer(buf: memoryview, meta: Dict[str, object]
                         ) -> TraceColumns:
    """Wrap a mapped segment's payload in a :class:`TraceColumns`
    whose buffers are views into the mapping (zero-copy)."""
    n = int(meta["n_records"])
    n_words = int(meta["n_words"])
    offset = _pad(8 + int(meta["header_bytes"]))
    cols = TraceColumns.__new__(TraceColumns)
    cols.n_records = n
    for field in ("pc", "word_id", "next_pc", "mem_addr"):
        setattr(cols, field,
                buf[offset:offset + 8 * n].cast("q"))
        offset += 8 * n
    cols.taken = buf[offset:offset + n]
    offset = _pad(offset + n)
    words = buf[offset:offset + 8 * n_words].cast("q")
    cols.instrs = [decode(word) for word in words]
    cols.has_trapped = bool(meta["has_trapped"])
    cols.vec_cache = None
    return cols


def _pack_into(buf: memoryview, trace, header: bytes) -> None:
    cols = trace.columns()
    n = cols.n_records
    buf[0:8] = len(header).to_bytes(8, "little")
    buf[8:8 + len(header)] = header
    offset = _pad(8 + len(header))
    for field in ("pc", "word_id", "next_pc", "mem_addr"):
        raw = memoryview(getattr(cols, field)).cast("B")
        buf[offset:offset + 8 * n] = raw
        offset += 8 * n
    buf[offset:offset + n] = memoryview(cols.taken)
    offset = _pad(offset + n)
    for i, instr in enumerate(cols.instrs):
        buf[offset + 8 * i:offset + 8 * (i + 1)] = \
            encode(instr).to_bytes(8, "little")


def _map_readonly(name: str):
    """Map a segment's backing file read-only; ``(owner, buffer)`` or
    ``None``.  The direct ``/dev/shm`` mapping is preferred (no
    resource tracker, silent teardown); ``SharedMemory`` attachment is
    the fallback for other shm filesystem layouts."""
    try:
        with open(os.path.join("/dev/shm", name), "rb") as handle:
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        return mapped, memoryview(mapped)
    except (OSError, ValueError):
        pass
    if _shm is None:  # pragma: no cover - shm-less platform
        return None
    try:  # pragma: no cover - non-/dev/shm layout
        shm = _shm.SharedMemory(name=name)
    except (FileNotFoundError, OSError, ValueError):
        return None
    return shm, shm.buf  # pragma: no cover


def attach(name: str) -> Optional[SharedTrace]:
    """Map a published page by segment name; ``None`` on any failure
    (unlinked segment, truncated header, shm-less platform)."""
    mapping = _map_readonly(name)
    if mapping is None:
        return None
    owner, buf = mapping
    try:
        header_bytes = int.from_bytes(bytes(buf[0:8]), "little")
        meta = json.loads(bytes(buf[8:8 + header_bytes]).decode("utf-8"))
        meta["header_bytes"] = header_bytes
        cols = _columns_from_buffer(buf, meta)
        return SharedTrace(owner, meta, cols)
    except Exception:
        try:
            owner.close()
        except (BufferError, OSError):  # pragma: no cover
            pass
        return None


class TracePageRegistry:
    """Parent-side owner of every published page.

    The registry is the single unlink authority: segments live exactly
    as long as the pool generation they serve, and
    :meth:`unlink_all` is idempotent so shutdown and rebuild paths can
    both call it without coordination.
    """

    def __init__(self) -> None:
        self._pages: Dict[str, object] = {}   # key -> SharedMemory
        self._names: Dict[str, str] = {}      # key -> segment name

    def __len__(self) -> int:
        return len(self._pages)

    def names(self) -> Dict[str, str]:
        """The ``{functional key: segment name}`` map shipped to
        workers (a copy — the registry keeps ownership)."""
        return dict(self._names)

    def publish(self, key: str, trace) -> Optional[str]:
        """Publish ``trace``'s decoded columns as a page for ``key``;
        returns the segment name, or ``None`` when shared memory is
        unavailable (never raises — pages are best-effort)."""
        if _shm is None:
            return None
        if key in self._names:
            return self._names[key]
        cols = trace.columns()
        n = cols.n_records
        header = json.dumps({
            "n_records": n,
            "n_words": len(cols.instrs),
            "nbytes": trace.nbytes,
            "has_trapped": cols.has_trapped,
            "markers": {str(mid): steps
                        for mid, steps in trace.markers.items()},
        }, separators=(",", ":")).encode("utf-8")
        size = (_pad(8 + len(header)) + 4 * 8 * n + _pad(n)
                + 8 * len(cols.instrs))
        name = f"{PAGE_PREFIX}_{os.getpid():x}_{secrets.token_hex(4)}"
        try:
            shm = _shm.SharedMemory(name=name, create=True,
                                    size=max(size, 1))
        except OSError:  # pragma: no cover - /dev/shm full or absent
            return None
        try:
            _pack_into(shm.buf, trace, header)
        except Exception:
            shm.close()
            try:
                shm.unlink()
            except OSError:  # pragma: no cover
                pass
            raise
        self._pages[key] = shm
        self._names[key] = name
        return name

    def unlink_all(self) -> int:
        """Close and unlink every page; returns how many were
        unlinked.  Safe to call repeatedly."""
        count = 0
        for shm in self._pages.values():
            try:
                shm.close()
            except (BufferError, OSError):  # pragma: no cover
                pass
            try:
                shm.unlink()
                count += 1
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self._pages.clear()
        self._names.clear()
        return count


def leaked_pages() -> List[str]:
    """Names of trace-page segments still present in ``/dev/shm`` —
    the fault suite's leak check (empty on non-Linux layouts)."""
    shm_dir = "/dev/shm"
    try:
        return sorted(entry for entry in os.listdir(shm_dir)
                      if entry.startswith(PAGE_PREFIX))
    except OSError:  # pragma: no cover
        return []
