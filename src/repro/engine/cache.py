"""Content-addressed on-disk cache of window results.

Results live under ``<root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json``
where ``key`` is the spec's canonical digest (which already folds in
:data:`~repro.engine.spec.SCHEMA_VERSION`, seeds and every simulation
parameter — see ``docs/engine.md``).  Entries are written atomically
(temp file + ``os.replace``) so concurrent workers and concurrent
processes can share one cache directory safely.

Every entry embeds an integrity block — the payload's canonical
sha256 and the schema version — recomputed on read
(``docs/integrity.md``).  What a mismatch becomes is the cache's
``policy``: ``verify`` (quarantine + raise), ``repair`` (the default:
quarantine to ``<root>/quarantine/`` with a reason file and
transparently recompute) or ``trust`` (skip digest verification; an
unparseable entry is still dropped, as before the integrity layer).

The root defaults to ``~/.cache/repro`` and is overridden by
``REPRO_CACHE_DIR``; ``REPRO_CACHE=0`` disables caching entirely.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
import tempfile
from typing import Any, Dict, Iterator, Optional, Set

from .integrity import (
    IntegrityCounters,
    IntegrityError,
    check_policy,
    integrity_policy_from_env,
    payload_digest,
    purge_quarantine,
    quarantine_entry,
    quarantined_entries,
)
from .spec import SCHEMA_VERSION, WindowSpec


def default_cache_dir() -> pathlib.Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro"


def cache_enabled_by_env() -> bool:
    return os.environ.get("REPRO_CACHE", "1") not in ("0", "false", "no")


class ResultCache:
    """Content-addressed store mapping spec digests to result payloads."""

    def __init__(self, root: Optional[pathlib.Path] = None,
                 enabled: bool = True,
                 policy: Optional[str] = None) -> None:
        self.root = pathlib.Path(root) if root else default_cache_dir()
        self.enabled = enabled
        self.policy = check_policy(policy if policy is not None
                                   else integrity_policy_from_env())
        self.hits = 0
        self.misses = 0
        self.integrity = IntegrityCounters()
        #: Keys whose entry was quarantined and awaits recomputation —
        #: the next successful ``put`` counts as a repair.
        self._repair_pending: Set[str] = set()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"v{SCHEMA_VERSION}" / key[:2] / f"{key}.json"

    def _quarantine(self, path: pathlib.Path, reason: str,
                    key: Optional[str] = None) -> None:
        if key is not None:
            self._repair_pending.add(key)
        if quarantine_entry(path, self.root, reason, key=key,
                            store="results") is not None:
            self.integrity.quarantined += 1

    @staticmethod
    def _check_entry(entry: Any) -> Dict[str, Any]:
        """The entry's payload, after verifying the embedded digest;
        raises ``ValueError`` on any mismatch."""
        payload = entry["result"]
        block = entry["integrity"]
        if block.get("schema") != SCHEMA_VERSION:
            raise ValueError(
                f"entry schema {block.get('schema')!r} != {SCHEMA_VERSION}")
        digest = payload_digest(payload)
        if block.get("digest") != digest:
            raise ValueError(
                f"payload digest mismatch: stored "
                f"{str(block.get('digest'))[:12]}…, computed {digest[:12]}…")
        return payload

    def get(self, spec: WindowSpec) -> Optional[Dict[str, Any]]:
        """The cached payload for ``spec``, or ``None`` on a miss.

        A corrupt entry — unparseable, or parseable with a digest that
        no longer matches its payload — is quarantined under
        ``verify``/``repair`` (and raises :class:`IntegrityError`
        under ``verify``); ``trust`` skips the digest check entirely.
        """
        if not self.enabled:
            return None
        verify = self.policy != "trust"
        path = self._path(spec.cache_key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if verify:
                payload = self._check_entry(entry)
            else:
                payload = entry["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError) as exc:
            self.misses += 1
            if not verify:
                # Legacy behaviour: drop it and recompute.
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            self._quarantine(path, repr(exc), key=spec.cache_key)
            if self.policy == "verify":
                raise IntegrityError(
                    f"result cache entry {spec.short_key} is corrupt "
                    f"(quarantined): {exc}") from exc
            return None
        if verify:
            self.integrity.verified += 1
        self.hits += 1
        return payload

    def put(self, spec: WindowSpec, payload: Dict[str, Any]) -> bool:
        """Store ``payload`` for ``spec`` (atomic, last-writer-wins).

        The entry is flushed and fsynced *before* the rename, so a
        window that completed before a crash or SIGKILL is durably
        cached — the invariant ``repro resume`` relies on to execute
        only the missing windows.  Returns True when the entry landed.
        """
        if not self.enabled:
            return False
        path = self._path(spec.cache_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"spec": spec.to_dict(), "result": payload,
                 "integrity": {"schema": SCHEMA_VERSION,
                               "digest": payload_digest(payload)}}
        handle = tempfile.NamedTemporaryFile(
            mode="w", encoding="utf-8", dir=path.parent,
            prefix=".tmp-", suffix=".json", delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, path)
            if spec.cache_key in self._repair_pending:
                self._repair_pending.discard(spec.cache_key)
                self.integrity.repaired += 1
            return True
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            return False

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI).  Only the versioned payload
    # subtrees are touched: the trace store may nest its own tree under
    # this root (``<root>/traces`` by default) and manages it itself.

    def _version_dirs(self) -> Iterator[pathlib.Path]:
        if not self.root.is_dir():
            return
        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith("v") \
                    and child.name[1:].isdigit():
                yield child

    def stats(self) -> Dict[str, Any]:
        """Entry/byte counts of the current-version cache, plus the
        integrity layer's health counters."""
        entries = 0
        total = 0
        version_dir = self.root / f"v{SCHEMA_VERSION}"
        if version_dir.is_dir():
            for path in version_dir.rglob("*.json"):
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    continue
        return {"root": str(self.root), "version": SCHEMA_VERSION,
                "entries": entries, "bytes": total,
                "policy": self.policy,
                "quarantined": len(quarantined_entries(self.root)),
                "integrity": self.integrity.as_dict()}

    def scan(self, repair: bool = False) -> Dict[str, Any]:
        """Verify every current-version entry (the ``repro doctor``
        pass).  With ``repair``, corrupt entries are quarantined so
        their next use recomputes them; without it they are only
        reported."""
        scanned = ok = corrupt = 0
        version_dir = self.root / f"v{SCHEMA_VERSION}"
        entries = (sorted(version_dir.rglob("*.json"))
                   if version_dir.is_dir() else [])
        for path in entries:
            scanned += 1
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    self._check_entry(json.load(handle))
            except (OSError, ValueError, KeyError, TypeError) as exc:
                corrupt += 1
                if repair:
                    self._quarantine(path, repr(exc), key=path.stem)
            else:
                ok += 1
        return {"root": str(self.root), "scanned": scanned, "ok": ok,
                "corrupt": corrupt,
                "quarantined": len(quarantined_entries(self.root))}

    def prune(self) -> int:
        """Drop stale-version subtrees, leftover temp files and the
        quarantine audit trail; returns the number of files removed."""
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            if version_dir.name == f"v{SCHEMA_VERSION}":
                continue
            removed += sum(1 for p in version_dir.rglob("*") if p.is_file())
            shutil.rmtree(version_dir, ignore_errors=True)
        for version_dir in self._version_dirs():
            for stray in version_dir.rglob(".tmp-*"):
                with contextlib.suppress(OSError):
                    stray.unlink()
                    removed += 1
        removed += purge_quarantine(self.root)
        return removed

    def clear(self) -> int:
        """Delete every cached payload (all versions); returns the count."""
        import shutil

        removed = 0
        for version_dir in self._version_dirs():
            removed += sum(1 for p in version_dir.rglob("*.json"))
            shutil.rmtree(version_dir, ignore_errors=True)
        return removed
