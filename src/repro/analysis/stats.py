"""Small statistics helpers used by the experiment harness."""

from __future__ import annotations

from typing import Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased sample standard deviation."""
    if len(values) < 2:
        raise ValueError("need at least two samples")
    center = mean(values)
    return (sum((v - center) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def fit_through_origin(xs: Sequence[float], ys: Sequence[float]
                       ) -> Tuple[float, float]:
    """Least-squares slope of ``y = m*x`` plus the fit's R^2.

    Used to test Figure 2's model that the variable component of
    sampling overhead is proportional to the sampling rate.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need matching sequences of length >= 2")
    sxx = sum(x * x for x in xs)
    if sxx == 0:
        raise ValueError("degenerate x values")
    slope = sum(x * y for x, y in zip(xs, ys)) / sxx
    y_mean = mean(ys)
    ss_tot = sum((y - y_mean) ** 2 for y in ys)
    ss_res = sum((y - slope * x) ** 2 for x, y in zip(xs, ys))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    return slope, r_squared


def welch_t(a: Sequence[float], b: Sequence[float]) -> Tuple[float, float]:
    """Welch's t statistic and two-sided p-value (via scipy)."""
    from scipy import stats as scipy_stats

    t_stat, p_value = scipy_stats.ttest_ind(list(a), list(b), equal_var=False)
    return float(t_stat), float(p_value)


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean needs positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
