"""Tests for the frequency encoding and AND-tree condition unit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.condition import (
    FREQ_FIELD_VALUES,
    ConditionUnit,
    EncodingError,
    contiguous_bits,
    field_for_interval,
    interval_of_field,
    nearest_field,
    probability_of_field,
    resolve_policy,
    spaced_bits,
)
from repro.core.lfsr import Lfsr


class TestEncoding:
    def test_field0_is_50_percent(self):
        assert probability_of_field(0) == 0.5

    def test_field15_is_the_paper_minimum(self):
        # (1/2)^16 = .0015% quoted in Section 3.2.
        assert probability_of_field(15) == pytest.approx(0.0000152587890625)

    def test_all_fields_powers_of_two(self):
        for field in range(FREQ_FIELD_VALUES):
            assert probability_of_field(field) == 0.5 ** (field + 1)

    def test_out_of_range_field_rejected(self):
        with pytest.raises(EncodingError):
            probability_of_field(16)
        with pytest.raises(EncodingError):
            probability_of_field(-1)

    def test_interval_of_field(self):
        assert interval_of_field(0) == 2
        assert interval_of_field(9) == 1024
        assert interval_of_field(12) == 8192

    def test_field_for_interval_roundtrip(self):
        for field in range(FREQ_FIELD_VALUES):
            assert field_for_interval(interval_of_field(field)) == field

    def test_field_for_interval_rejects_non_power(self):
        with pytest.raises(EncodingError):
            field_for_interval(3)

    def test_field_for_interval_rejects_one(self):
        # 100% taken is intentionally not encodable (Section 3.2 adds
        # 1 to freq to avoid re-encoding unconditional jumps).
        with pytest.raises(EncodingError):
            field_for_interval(1)

    def test_field_for_interval_rejects_too_large(self):
        with pytest.raises(EncodingError):
            field_for_interval(1 << 17)

    def test_nearest_field(self):
        assert nearest_field(0.5) == 0
        assert nearest_field(0.25) == 1
        assert nearest_field(0.01) == 6  # nearest power of 1/2 to 1%
        assert nearest_field(1e-9) == 15  # clamped

    def test_nearest_field_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            nearest_field(0.0)
        with pytest.raises(EncodingError):
            nearest_field(0.75)


class TestBitPolicies:
    def test_contiguous(self):
        assert contiguous_bits(4, 16) == (0, 1, 2, 3)

    def test_contiguous_too_wide_rejected(self):
        with pytest.raises(EncodingError):
            contiguous_bits(17, 16)

    def test_spaced_matches_paper_example(self):
        # "selecting bits 0, 2, 5, and 9 to compute a 6.25% probability"
        assert spaced_bits(4, 20) == (0, 2, 5, 9)

    def test_spaced_single_bit(self):
        assert spaced_bits(1, 20) == (0,)

    def test_spaced_fills_narrow_register(self):
        assert spaced_bits(16, 16) == tuple(range(16))

    def test_spaced_strictly_increasing(self):
        for count in range(1, 17):
            for width in range(count, 33):
                positions = spaced_bits(count, width)
                assert len(positions) == count
                assert all(b > a for a, b in zip(positions, positions[1:]))
                assert positions[-1] < width

    def test_spaced_wide_register_keeps_growing_gaps(self):
        positions = spaced_bits(6, 32)
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert gaps == [2, 3, 4, 5, 6]

    def test_spaced_too_wide_rejected(self):
        with pytest.raises(EncodingError):
            spaced_bits(17, 16)

    def test_resolve_policy_by_name(self):
        assert resolve_policy("contiguous") is contiguous_bits
        assert resolve_policy("spaced") is spaced_bits

    def test_resolve_policy_callable_passthrough(self):
        fn = lambda count, width: tuple(range(count))
        assert resolve_policy(fn) is fn

    def test_resolve_policy_unknown(self):
        with pytest.raises(EncodingError):
            resolve_policy("random")


class TestConditionUnit:
    def test_narrow_lfsr_rejected(self):
        with pytest.raises(EncodingError):
            ConditionUnit(Lfsr(8))

    def test_field0_reads_single_bit(self):
        lfsr = Lfsr(20)
        unit = ConditionUnit(lfsr)
        assert unit.bit_selection(0) == (0,)

    def test_evaluate_matches_all_outputs(self):
        lfsr = Lfsr(20, seed=0x5A5A5)
        unit = ConditionUnit(lfsr)
        for _ in range(200):
            outputs = unit.all_outputs()
            for field in range(FREQ_FIELD_VALUES):
                assert unit.evaluate(field) == bool(outputs[field])
            lfsr.step()

    def test_outputs_monotone_in_field(self):
        """With nested contiguous selections, a taken high field implies
        taken lower fields (AND of a superset of bits)."""
        lfsr = Lfsr(20, seed=0x12345)
        unit = ConditionUnit(lfsr, policy="contiguous")
        for _ in range(500):
            outputs = unit.all_outputs()
            for field in range(1, FREQ_FIELD_VALUES):
                if outputs[field]:
                    assert outputs[field - 1]
            lfsr.step()

    def test_evaluate_does_not_step(self):
        lfsr = Lfsr(20, seed=0x777)
        unit = ConditionUnit(lfsr)
        before = lfsr.state
        unit.evaluate(3)
        unit.all_outputs()
        assert lfsr.state == before

    @pytest.mark.parametrize("policy", ["contiguous", "spaced"])
    @pytest.mark.parametrize("field", [0, 1, 3])
    def test_full_period_frequency_exact(self, policy, field):
        """Over a full 2^16-1 period, the exact taken count of an
        x-input AND is 2^(16-x) (every bit pattern occurs once except
        all-zeros)."""
        lfsr = Lfsr(16, seed=1)
        unit = ConditionUnit(lfsr, policy=policy)
        period = (1 << 16) - 1
        taken = 0
        for _ in range(period):
            if unit.evaluate(field):
                taken += 1
            lfsr.step()
        assert taken == 1 << (16 - (field + 1))


@settings(max_examples=30, deadline=None)
@given(
    field=st.integers(min_value=0, max_value=6),
    seed=st.integers(min_value=1, max_value=(1 << 20) - 1),
)
def test_measured_probability_approaches_encoding(field, seed):
    """Asymptotic frequency convergence (the architected property)."""
    lfsr = Lfsr(20, seed=seed)
    unit = ConditionUnit(lfsr)
    trials = 4096 * (1 << field)
    taken = 0
    for _ in range(trials):
        if unit.evaluate(field):
            taken += 1
        lfsr.step()
    expected = probability_of_field(field)
    assert abs(taken / trials - expected) < max(0.35 * expected, 0.004)
