"""Tests for the stable ``repro.api`` façade and ``EngineConfig``.

Pins the API-redesign contracts: every CLI command has a keyword-only
``run_*`` twin returning a :class:`FigureResult`, the CLI and the
façade produce identical output (same code path), the engine config
round-trips and resolves the environment in one place, and the
deprecated spellings keep working behind warnings.
"""

import inspect
import json

import pytest

import repro
from repro import api
from repro.cli import main
from repro.engine import EngineConfig, ExperimentEngine, ResultCache

RUNNERS = ("run_figure9", "run_figure10", "run_figure12", "run_figure13",
           "run_figure14", "run_figure2", "run_sensitivity", "run_cost",
           "run_scorecard")


class TestFacadeShape:
    def test_every_command_has_a_runner(self):
        for name in RUNNERS:
            assert name in api.__all__
            assert callable(getattr(api, name))

    def test_runner_arguments_are_keyword_only(self):
        """Keyword-only signatures are the façade's forward-compat
        guarantee: adding a parameter can never break a caller."""
        for name in RUNNERS:
            signature = inspect.signature(getattr(api, name))
            assert all(
                p.kind == inspect.Parameter.KEYWORD_ONLY
                for p in signature.parameters.values()
            ), f"{name} has non-keyword-only parameters"

    def test_engine_types_reexported(self):
        assert api.ExperimentEngine is ExperimentEngine
        assert api.EngineConfig is EngineConfig

    def test_top_level_reexports(self):
        for name in RUNNERS + ("ExperimentEngine", "EngineConfig",
                               "FigureResult", "WindowSpec",
                               "WindowFailure", "is_failure"):
            assert hasattr(repro, name)
            assert getattr(repro, name) is getattr(api, name)


class TestFacadeResults:
    def test_run_cost_matches_cli(self, capsys):
        result = api.run_cost()
        assert main(["cost"]) == 0
        assert capsys.readouterr().out == result.text + "\n"
        assert any(row["decode_width"] == 4 for row in result.data)

    def test_run_figure13_matches_cli(self, capsys, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        result = api.run_figure13(scale=600, engine=engine)
        assert main(["figure13", "--scale", "600",
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert capsys.readouterr().out == result.text + "\n"

    def test_explicit_engine_is_used_and_restored(self, tmp_path):
        from repro.engine import get_engine

        ambient = get_engine()
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        result = api.run_figure9(scale=0.002, engine=engine)
        assert engine.summary()["windows"] > 0
        assert get_engine() is ambient
        assert result.data[-1]["benchmark"] == "average"

    def test_figure_result_is_json_serialisable(self, tmp_path):
        engine = ExperimentEngine(cache=ResultCache(tmp_path / "cache"))
        result = api.run_figure12(scale=0.5, engine=engine)
        json.dumps(result.data)
        assert "Figure 12" in result.text

    def test_scorecard_data_mirrors_exit_condition(self, monkeypatch):
        from repro.experiments.scorecard import ClaimResult
        import repro.experiments as experiments

        monkeypatch.setattr(
            experiments, "run_scorecard",
            lambda quick=True: [ClaimResult("fine", True, "ok", 0.0)])
        result = api.run_scorecard()
        assert result.data["passed"] == result.data["total"] == 1
        assert result.data["failed"] is False


class TestEngineConfig:
    def test_round_trip(self):
        config = EngineConfig(jobs=4, timeout=30.0, retries=5,
                              backoff=0.1, failure_policy="skip",
                              fault_rate=0.2, resume_from="run.jsonl")
        data = json.loads(json.dumps(config.to_dict()))
        assert EngineConfig.from_dict(data) == config

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="warp_drive"):
            EngineConfig.from_dict({"warp_drive": 9})

    @pytest.mark.parametrize("bad", [
        {"failure_policy": "explode"},
        {"retries": -1},
        {"backoff": -0.5},
        {"timeout": 0},
        {"fault_rate": 1.0},
        {"fault_rate": -0.1},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            EngineConfig(**bad)

    def test_from_env_resolves_every_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        monkeypatch.setenv("REPRO_TIMEOUT", "45")
        monkeypatch.setenv("REPRO_RETRIES", "7")
        monkeypatch.setenv("REPRO_BACKOFF", "0.2")
        monkeypatch.setenv("REPRO_FAILURE_POLICY", "skip")
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.3")
        config = EngineConfig.from_env()
        assert config == EngineConfig(jobs=6, timeout=45.0, retries=7,
                                      backoff=0.2, failure_policy="skip",
                                      fault_rate=0.3)

    def test_from_env_overrides_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "7")
        assert EngineConfig.from_env(retries=1).retries == 1

    def test_from_env_ignores_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "soon")
        monkeypatch.setenv("REPRO_FAILURE_POLICY", "whatever")
        config = EngineConfig.from_env()
        assert config.timeout is None
        assert config.failure_policy == "retry"

    def test_with_overrides_returns_new_frozen_copy(self):
        config = EngineConfig()
        other = config.with_overrides(jobs=2)
        assert other.jobs == 2 and config.jobs is None
        with pytest.raises(Exception):
            other.jobs = 9  # frozen

    def test_engine_exposes_resolved_config(self, tmp_path):
        engine = ExperimentEngine(
            config=EngineConfig(jobs=2, failure_policy="skip"),
            cache=ResultCache(tmp_path))
        assert engine.config.failure_policy == "skip"
        assert engine.jobs == 2
