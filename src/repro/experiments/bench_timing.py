"""The ``repro bench`` harness: fastpath-vs-golden timing benchmark.

Runs every window the scorecard grades — the 15 Figure-12 cells (5
mini-JVM benchmarks x none/cbs/brr at full scale) and the 4 Figure-13
framework combinations — through *both* replay implementations:

* the per-record golden loop (``replay_window(..., fast=False)``), and
* the batched columnar kernel (:mod:`repro.timing.fastpath`).

Each window is recorded once (in memory; the result cache and trace
store are bypassed so the timings are honest cold numbers), replayed
twice, checked for byte-identical :class:`~repro.timing.pipeline.
TimingStats`, and timed.  The fast-path timing includes the one-time
columnar decode — the cold-cache cost a first replay actually pays.

The emitted document (``BENCH_timing.json`` under ``--out``) is the
machine-readable perf trajectory: per-window records/sec and speedup,
per-figure wall-clock, an aggregate speedup (the PR's >= 2x acceptance
criterion on the Figure-12 set), and the batched-LFSR rates.
``repro bench`` exits non-zero if any window's stats diverge.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from ..engine.spec import WindowSpec
from ..engine.windows import MATERIALS


def scorecard_bench_specs() -> List[WindowSpec]:
    """The 19 scorecard windows (15 Figure-12 cells + 4 Figure-13
    combos), exactly as the golden equivalence tests pin them."""
    from ..jvm.benchmarks import FIGURE12_BENCHMARKS
    from .fig12 import jvm_window_spec
    from .fig13 import COMBOS, microbench_window_spec

    return [
        jvm_window_spec(name, variant, scale=1.0)
        for name in FIGURE12_BENCHMARKS
        for variant in ("none", "cbs", "brr")
    ] + [
        microbench_window_spec(600, duplication, seed=0, kind=kind,
                               interval=1024)
        for kind, duplication in COMBOS
    ]


def _bench_window(spec: WindowSpec) -> Dict[str, Any]:
    """Record one window, replay it on both paths, compare and time."""
    from ..timing.runner import record_window, replay_window

    params = spec.params_dict()
    materials = MATERIALS[spec.kind](params)
    config = params.get("config")
    if config is not None:
        from ..timing.config import TimingConfig

        config = TimingConfig.from_dict(config)
    trace = record_window(
        materials["program"], materials["end"],
        brr_unit=materials["brr_unit"], setup=materials["setup"],
    )

    started = time.perf_counter()
    golden = replay_window(
        trace, materials["begin"], materials["end"], config=config,
        fast_forward=materials["fast_forward"],
        program=materials["program"], fast=False,
    )
    golden_s = time.perf_counter() - started

    started = time.perf_counter()
    fast = replay_window(
        trace, materials["begin"], materials["end"], config=config,
        fast_forward=materials["fast_forward"],
        program=materials["program"], fast=True,
    )
    fast_s = time.perf_counter() - started

    identical = (fast.stats == golden.stats
                 and fast.total_steps == golden.total_steps)
    records = len(trace)
    return {
        "label": spec.label(),
        "kind": spec.kind,
        "figure": "figure12" if spec.kind == "jvm" else "figure13",
        "records": records,
        "golden_s": round(golden_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(golden_s / fast_s, 3) if fast_s > 0 else None,
        "golden_records_per_s": round(records / golden_s) if golden_s > 0
        else None,
        "fast_records_per_s": round(records / fast_s) if fast_s > 0
        else None,
        "identical": identical,
        "cycles": golden.stats.cycles,
        "instructions": golden.stats.instructions,
    }


def _aggregate(rows: List[Dict[str, Any]]) -> Dict[str, Any]:
    golden_s = sum(row["golden_s"] for row in rows)
    fast_s = sum(row["fast_s"] for row in rows)
    records = sum(row["records"] for row in rows)
    return {
        "windows": len(rows),
        "records": records,
        "golden_s": round(golden_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(golden_s / fast_s, 3) if fast_s > 0 else None,
        "golden_records_per_s": round(records / golden_s) if golden_s > 0
        else None,
        "fast_records_per_s": round(records / fast_s) if fast_s > 0
        else None,
        "identical": all(row["identical"] for row in rows),
    }


def bench_lfsr_rates(bits: int = 1 << 16) -> Dict[str, Any]:
    """Bit-at-a-time vs. word-batched LFSR generation (satellite of
    the same PR; ``benchmarks/bench_lfsr.py`` pins the speedup)."""
    from ..core.lfsr import Lfsr

    words = bits // 64
    bits = words * 64
    stepper = Lfsr(20, seed=0xACE1)
    started = time.perf_counter()
    for _ in range(bits):
        stepper.step()
    step_s = time.perf_counter() - started

    batched = Lfsr(20, seed=0xACE1)
    started = time.perf_counter()
    batched.step_words(words)
    words_s = time.perf_counter() - started
    assert batched.state == stepper.state, "batched LFSR diverged"

    return {
        "bits": bits,
        "step_s": round(step_s, 6),
        "step_words_s": round(words_s, 6),
        "step_bits_per_s": round(bits / step_s) if step_s > 0 else None,
        "step_words_bits_per_s": round(bits / words_s) if words_s > 0
        else None,
        "speedup": round(step_s / words_s, 3) if words_s > 0 else None,
    }


def bench_timing(specs: Optional[List[WindowSpec]] = None) -> Dict[str, Any]:
    """Run the full fastpath-vs-golden benchmark document."""
    rows = [_bench_window(spec)
            for spec in (specs if specs is not None
                         else scorecard_bench_specs())]
    figures = {}
    for figure in ("figure12", "figure13"):
        subset = [row for row in rows if row["figure"] == figure]
        if subset:
            figures[figure] = _aggregate(subset)
    return {
        "windows": rows,
        "figures": figures,
        "aggregate": _aggregate(rows),
        "lfsr": bench_lfsr_rates(),
    }


def format_bench(data: Dict[str, Any]) -> str:
    """Human-readable table of a :func:`bench_timing` document."""
    lines = [
        "repro bench: fastpath vs golden replay (cold, per window)",
        f"{'window':<28} {'records':>9} {'golden_s':>9} {'fast_s':>8} "
        f"{'speedup':>8} {'fast rec/s':>11}  ok",
    ]
    for row in data["windows"]:
        lines.append(
            f"{row['label']:<28} {row['records']:>9} "
            f"{row['golden_s']:>9.3f} {row['fast_s']:>8.3f} "
            f"{row['speedup']:>7.2f}x {row['fast_records_per_s']:>11,}  "
            f"{'yes' if row['identical'] else 'NO'}"
        )
    for name, agg in list(data["figures"].items()) + \
            [("aggregate", data["aggregate"])]:
        lines.append(
            f"{name:<28} {agg['records']:>9} {agg['golden_s']:>9.3f} "
            f"{agg['fast_s']:>8.3f} {agg['speedup']:>7.2f}x "
            f"{agg['fast_records_per_s']:>11,}  "
            f"{'yes' if agg['identical'] else 'NO'}"
        )
    lfsr = data["lfsr"]
    lines.append(
        f"lfsr step_words ({lfsr['bits']} bits): "
        f"{lfsr['step_bits_per_s']:,} -> {lfsr['step_words_bits_per_s']:,} "
        f"bits/s ({lfsr['speedup']:.2f}x)"
    )
    status = "all windows byte-identical" \
        if data["aggregate"]["identical"] else "DIVERGENCE DETECTED"
    lines.append(status)
    return "\n".join(lines)
